package spatialdb

import (
	"errors"
	"math"
	"testing"

	"popana/internal/faultinject"
	"popana/internal/geom"
)

func TestInsertRejectsInvalidPoints(t *testing.T) {
	db := NewDB()
	tab, err := db.CreateTable("t", 4, geom.UnitSquare)
	if err != nil {
		t.Fatal(err)
	}
	bad := []geom.Point{
		geom.Pt(math.NaN(), 0.5),
		geom.Pt(0.5, math.NaN()),
		geom.Pt(math.Inf(1), 0.5),
		geom.Pt(0.5, math.Inf(-1)),
	}
	for _, p := range bad {
		err := tab.Insert(Record{ID: 1, Loc: p})
		if !errors.Is(err, ErrInvalidPoint) {
			t.Errorf("Insert(%v) = %v, want ErrInvalidPoint", p, err)
		}
	}
	if tab.Len() != 0 {
		t.Fatalf("invalid inserts changed Len to %d", tab.Len())
	}
}

func TestCreateTableRejectsDegenerateRegions(t *testing.T) {
	db := NewDB()
	bad := []geom.Rect{
		geom.R(0, 0, 0, 1),                     // zero width
		geom.R(0, 0, 1, 0),                     // zero height
		geom.R(1, 0, 0, 1),                     // inverted
		geom.R(0, 0, math.NaN(), 1),            // NaN corner
		geom.R(0, 0, math.Inf(1), 1),           // infinite corner
		geom.R(0.3, 0.3, 0.3, 0.3),             // a point
		{MinX: math.Inf(-1), MaxX: 1, MaxY: 1}, // infinite corner
	}
	for i, r := range bad {
		if _, err := db.CreateTable("t", 4, r); !errors.Is(err, ErrInvalidRegion) {
			t.Errorf("region %d %v: err = %v, want ErrInvalidRegion", i, r, err)
		}
	}
	// The zero Rect still selects the unit square.
	tab, err := db.CreateTable("t", 4, geom.Rect{})
	if err != nil {
		t.Fatal(err)
	}
	if tab == nil {
		t.Fatal("nil table")
	}
}

func TestQueryValidationTypedErrors(t *testing.T) {
	db := NewDB()
	tab, _ := db.CreateTable("t", 4, geom.UnitSquare)
	fill(t, tab, 50, 11)

	nanWindow := geom.R(0, 0, math.NaN(), 1)
	if _, _, err := tab.Select(Query{Window: &nanWindow}); !errors.Is(err, ErrInvalidRegion) {
		t.Errorf("NaN window: %v", err)
	}
	flat := geom.R(0.2, 0.2, 0.2, 0.8)
	if _, _, err := tab.Select(Query{Window: &flat}); !errors.Is(err, ErrInvalidRegion) {
		t.Errorf("zero-area window: %v", err)
	}
	if _, _, err := tab.Select(Query{Nearest: &NearestSpec{At: geom.Pt(math.NaN(), 0), K: 1}}); !errors.Is(err, ErrInvalidPoint) {
		t.Errorf("NaN nearest: %v", err)
	}
	if _, _, err := tab.Select(Query{Within: &WithinSpec{At: geom.Pt(math.Inf(1), 0), Radius: 0.1}}); !errors.Is(err, ErrInvalidPoint) {
		t.Errorf("Inf within: %v", err)
	}
	if _, _, err := tab.Select(Query{Within: &WithinSpec{At: geom.Pt(0.5, 0.5), Radius: math.NaN()}}); err == nil {
		t.Error("NaN radius accepted")
	}
	if _, _, err := tab.Select(Query{Within: &WithinSpec{At: geom.Pt(0.5, 0.5), Radius: math.Inf(1)}}); err == nil {
		t.Error("Inf radius accepted")
	}
	// Explain shares the same validation.
	if _, err := tab.Explain(Query{Window: &nanWindow}); !errors.Is(err, ErrInvalidRegion) {
		t.Errorf("Explain NaN window: %v", err)
	}
}

func TestQueryBudgetTruncates(t *testing.T) {
	db := NewDB()
	tab, _ := db.CreateTable("t", 2, geom.UnitSquare)
	fill(t, tab, 3000, 12)
	w := geom.UnitSquare

	full, fullCost, err := tab.Select(Query{Window: &w})
	if err != nil {
		t.Fatal(err)
	}
	if fullCost.Truncated || len(full) != 3000 {
		t.Fatalf("unbudgeted select: %d records, cost %+v", len(full), fullCost)
	}

	part, cost, err := tab.Select(Query{Window: &w, MaxNodes: 16})
	if err != nil {
		t.Fatal(err)
	}
	if !cost.Truncated {
		t.Fatalf("budget 16 not truncated: %+v", cost)
	}
	if cost.NodesVisited > 16 {
		t.Fatalf("visited %d nodes over budget", cost.NodesVisited)
	}
	if len(part) == 0 || len(part) >= len(full) {
		t.Fatalf("partial result has %d records (full %d)", len(part), len(full))
	}

	// Radius queries honor the budget too.
	_, cost, err = tab.Select(Query{Within: &WithinSpec{At: geom.Pt(0.5, 0.5), Radius: 0.5}, MaxNodes: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !cost.Truncated {
		t.Fatalf("radius budget not truncated: %+v", cost)
	}

	// An ample budget changes nothing.
	all, cost, err := tab.Select(Query{Window: &w, MaxNodes: fullCost.NodesVisited + 1})
	if err != nil {
		t.Fatal(err)
	}
	if cost.Truncated || len(all) != len(full) {
		t.Fatalf("ample budget: %d records, %+v", len(all), cost)
	}
}

// TestCreateTableSolveCache: the first table of a given capacity pays
// the iterative solve (and logs its attempts); later tables of the same
// capacity hit the per-(capacity, fanout) cache.
func TestCreateTableSolveCache(t *testing.T) {
	// Capacity 13 is not used by any other test in this package; evict
	// its cache entry anyway so the test survives -count=N repeats,
	// where the process-wide cache is warm on the second run.
	const capacity = 13
	solveCache.Delete(solveKey{capacity, quadFanout})
	db := NewDB()
	t1, err := db.CreateTable("first", capacity, geom.UnitSquare)
	if err != nil {
		t.Fatal(err)
	}
	if len(t1.SolveAttempts()) == 0 {
		t.Fatal("first creation recorded no solve attempts")
	}
	t2, err := db.CreateTable("second", capacity, geom.UnitSquare)
	if err != nil {
		t.Fatal(err)
	}
	if len(t2.SolveAttempts()) != 0 {
		t.Fatalf("second creation re-solved: %+v", t2.SolveAttempts())
	}
	s1, s2 := t1.Stats(), t2.Stats()
	if s1.ModelOccupancy != s2.ModelOccupancy {
		t.Fatalf("cached occupancy %v != solved %v", s2.ModelOccupancy, s1.ModelOccupancy)
	}
	if s1.ModelApproximate || s2.ModelApproximate {
		t.Fatal("clean solve marked approximate")
	}
}

// TestCreateTableDegradesWhenAllRungsFail: with every solver rung
// forced to fail, CreateTable still succeeds, the occupancy falls back
// to the closed-form heuristic, and estimates are flagged approximate.
func TestCreateTableDegradesWhenAllRungsFail(t *testing.T) {
	inj := faultinject.New(7)
	inj.Enable(faultinject.SolverNewton, 1)
	inj.Enable(faultinject.SolverFixedPoint, 1)
	db := NewDB()
	db.SetFaultInjector(inj)
	tab, err := db.CreateTable("degraded", 4, geom.UnitSquare)
	if err != nil {
		t.Fatalf("CreateTable failed instead of degrading: %v", err)
	}
	attempts := tab.SolveAttempts()
	if len(attempts) < 2 {
		t.Fatalf("attempts %+v", attempts)
	}
	for i, a := range attempts {
		if !errors.Is(a.Err, faultinject.ErrInjected) {
			t.Fatalf("attempt %d not injected: %+v", i, a)
		}
	}
	st := tab.Stats()
	if !st.ModelApproximate {
		t.Fatal("degraded table not marked approximate")
	}
	if st.ModelOccupancy <= 0 || st.ModelOccupancy > 4 {
		t.Fatalf("heuristic occupancy %v out of range", st.ModelOccupancy)
	}
	// The table remains fully usable and EXPLAIN stays sane.
	fill(t, tab, 500, 13)
	w := geom.R(0.2, 0.2, 0.7, 0.7)
	est, err := tab.Explain(Query{Window: &w})
	if err != nil {
		t.Fatal(err)
	}
	if !est.Approximate {
		t.Fatalf("estimate not flagged approximate: %+v", est)
	}
	if est.Blocks <= 0 || math.IsNaN(est.Blocks) {
		t.Fatalf("degraded estimate %+v", est)
	}
	out, _, err := tab.Select(Query{Window: &w})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("degraded table returned nothing")
	}
}

// TestPartialSolveFailureStillExact: if only Newton is forced to fail
// the fixed-point rung rescues the solve and nothing is approximate.
func TestPartialSolveFailureStillExact(t *testing.T) {
	inj := faultinject.New(7)
	inj.Enable(faultinject.SolverNewton, 1)
	db := NewDB()
	db.SetFaultInjector(inj)
	tab, err := db.CreateTable("rescued", 4, geom.UnitSquare)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Stats().ModelApproximate {
		t.Fatal("rescued solve marked approximate")
	}
	attempts := tab.SolveAttempts()
	if len(attempts) != 2 || !errors.Is(attempts[0].Err, faultinject.ErrInjected) || attempts[1].Err != nil {
		t.Fatalf("attempts %+v", attempts)
	}
}

func TestInjectedInsertFaultIsAtomic(t *testing.T) {
	inj := faultinject.New(3)
	db := NewDB()
	db.SetFaultInjector(inj)
	tab, err := db.CreateTable("t", 4, geom.UnitSquare)
	if err != nil {
		t.Fatal(err)
	}
	inj.Enable(faultinject.InsertFault, 1)
	rec := Record{ID: 1, Loc: geom.Pt(0.5, 0.5)}
	if err := tab.Insert(rec); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v", err)
	}
	if tab.Len() != 0 {
		t.Fatalf("failed insert left %d records", tab.Len())
	}
	if _, ok := tab.Get(1); ok {
		t.Fatal("failed insert left the ID mapping behind")
	}
	inj.Disable(faultinject.InsertFault)
	if err := tab.Insert(rec); err != nil {
		t.Fatalf("insert after disabling faults: %v", err)
	}
	if got, ok := tab.Get(1); !ok || got.Loc != rec.Loc {
		t.Fatalf("Get = %+v, %v", got, ok)
	}
}
