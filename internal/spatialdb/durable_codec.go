package spatialdb

// WAL record and payload codecs for durable tables. The wal package
// frames opaque byte payloads; the meaning of those bytes — which
// mutation, which record — is owned here, next to the mutation paths
// that emit them.
//
// Op encodings (first byte is the op tag):
//
//	opInsert  1 | id u64 | xbits u64 | ybits u64 | payload
//	opDelete  2 | id u64 | xbits u64 | ybits u64
//	opBatch   3 | batchID u64 | shardCount u32 | n u32 | n × insert bodies
//	opCommit  4 | batchID u64
//
// A multi-shard InsertBatch appends one opBatch record per involved
// shard, each carrying only that shard's records plus the batch's
// identity (batchID) and fan-out (shardCount), and then one opCommit
// record to the table-level batch-commit log. The commit is the batch's
// durability point: recovery applies a batch's frames iff its commit
// record survives. Because the commit is a single record in a single
// log, it is durable all-or-nothing — there is no window where a batch
// is half-committed — and per-shard WAL seals, which may fold away some
// shards' frames while others remain, can never confuse the verdict (a
// frame only reaches a sealed run after its batch committed, since
// InsertBatch holds every involved shard's write lock across the whole
// log-commit-apply sequence and seals need the read lock).
//
// Payload encoding (first byte is the kind tag): nil, []byte, string,
// int64, uint64, float64, bool, and int cover every value the test
// suites and examples store. Any other dynamic type is rejected with
// ErrPayloadNotDurable before the WAL is touched, so a non-serializable
// record can never be half-durable.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"popana/internal/geom"
)

// ErrPayloadNotDurable is returned by durable mutations whose
// Record.Data has a dynamic type the durable payload codec does not
// cover.
var ErrPayloadNotDurable = errors.New("spatialdb: record payload type not supported by durable storage")

const (
	opInsert byte = 1
	opDelete byte = 2
	opBatch  byte = 3
	opCommit byte = 4
)

const (
	payloadNil     byte = 0
	payloadBytes   byte = 1
	payloadString  byte = 2
	payloadInt64   byte = 3
	payloadUint64  byte = 4
	payloadFloat64 byte = 5
	payloadBool    byte = 6
	payloadInt     byte = 7
)

// encodePayload serializes a record payload, rejecting unsupported
// dynamic types with ErrPayloadNotDurable.
func encodePayload(v any) ([]byte, error) {
	switch x := v.(type) {
	case nil:
		return []byte{payloadNil}, nil
	case []byte:
		return append([]byte{payloadBytes}, x...), nil
	case string:
		return append([]byte{payloadString}, x...), nil
	case int64:
		return binary.LittleEndian.AppendUint64([]byte{payloadInt64}, uint64(x)), nil
	case uint64:
		return binary.LittleEndian.AppendUint64([]byte{payloadUint64}, x), nil
	case float64:
		return binary.LittleEndian.AppendUint64([]byte{payloadFloat64}, math.Float64bits(x)), nil
	case bool:
		b := byte(0)
		if x {
			b = 1
		}
		return []byte{payloadBool, b}, nil
	case int:
		return binary.LittleEndian.AppendUint64([]byte{payloadInt}, uint64(x)), nil
	default:
		return nil, fmt.Errorf("%w: %T", ErrPayloadNotDurable, v)
	}
}

// decodePayload inverts encodePayload.
func decodePayload(b []byte) (any, error) {
	if len(b) == 0 {
		return nil, fmt.Errorf("spatialdb: empty durable payload")
	}
	kind, rest := b[0], b[1:]
	fixed := func(n int) error {
		if len(rest) != n {
			return fmt.Errorf("spatialdb: durable payload kind %d: %d bytes, want %d", kind, len(rest), n)
		}
		return nil
	}
	switch kind {
	case payloadNil:
		if err := fixed(0); err != nil {
			return nil, err
		}
		return nil, nil
	case payloadBytes:
		return append([]byte(nil), rest...), nil
	case payloadString:
		return string(rest), nil
	case payloadInt64:
		if err := fixed(8); err != nil {
			return nil, err
		}
		return int64(binary.LittleEndian.Uint64(rest)), nil
	case payloadUint64:
		if err := fixed(8); err != nil {
			return nil, err
		}
		return binary.LittleEndian.Uint64(rest), nil
	case payloadFloat64:
		if err := fixed(8); err != nil {
			return nil, err
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(rest)), nil
	case payloadBool:
		if err := fixed(1); err != nil {
			return nil, err
		}
		return rest[0] != 0, nil
	case payloadInt:
		if err := fixed(8); err != nil {
			return nil, err
		}
		return int(binary.LittleEndian.Uint64(rest)), nil
	default:
		return nil, fmt.Errorf("spatialdb: unknown durable payload kind %d", kind)
	}
}

// walOp is one decoded WAL record.
type walOp struct {
	op    byte
	id    uint64
	loc   geom.Point
	data  any
	batch walBatch
}

// walBatch is the batch portion of an opBatch record.
type walBatch struct {
	id         uint64
	shardCount int
	recs       []Record
}

// insertBody encodes the common id+location+payload body shared by
// opInsert and the per-record section of opBatch.
func insertBody(b []byte, id uint64, loc geom.Point, payload []byte) []byte {
	b = binary.LittleEndian.AppendUint64(b, id)
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(loc.X))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(loc.Y))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(payload)))
	return append(b, payload...)
}

func readInsertBody(b []byte) (id uint64, loc geom.Point, data any, rest []byte, err error) {
	if len(b) < 28 {
		return 0, geom.Point{}, nil, nil, fmt.Errorf("spatialdb: WAL insert body truncated")
	}
	id = binary.LittleEndian.Uint64(b[0:8])
	loc = geom.Pt(
		math.Float64frombits(binary.LittleEndian.Uint64(b[8:16])),
		math.Float64frombits(binary.LittleEndian.Uint64(b[16:24])),
	)
	n := binary.LittleEndian.Uint32(b[24:28])
	if uint64(len(b)) < 28+uint64(n) {
		return 0, geom.Point{}, nil, nil, fmt.Errorf("spatialdb: WAL insert payload truncated")
	}
	data, err = decodePayload(b[28 : 28+n])
	if err != nil {
		return 0, geom.Point{}, nil, nil, err
	}
	return id, loc, data, b[28+n:], nil
}

// encodeInsertOp builds an opInsert WAL record.
func encodeInsertOp(id uint64, loc geom.Point, payload []byte) []byte {
	return insertBody([]byte{opInsert}, id, loc, payload)
}

// encodeDeleteOp builds an opDelete WAL record.
func encodeDeleteOp(id uint64, loc geom.Point) []byte {
	b := []byte{opDelete}
	b = binary.LittleEndian.AppendUint64(b, id)
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(loc.X))
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(loc.Y))
}

// encodeBatchOp builds one shard's opBatch WAL record: the batch
// identity plus this shard's slice of the records, payloads
// pre-encoded in recs order.
func encodeBatchOp(batchID uint64, shardCount int, recs []Record, payloads [][]byte) []byte {
	b := []byte{opBatch}
	b = binary.LittleEndian.AppendUint64(b, batchID)
	b = binary.LittleEndian.AppendUint32(b, uint32(shardCount))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(recs)))
	for i, r := range recs {
		b = insertBody(b, r.ID, r.Loc, payloads[i])
	}
	return b
}

// encodeCommitOp builds the batch-commit record appended to the
// table-level batch log after every per-shard opBatch frame landed.
func encodeCommitOp(batchID uint64) []byte {
	return binary.LittleEndian.AppendUint64([]byte{opCommit}, batchID)
}

// decodeOp inverts the encoders.
func decodeOp(b []byte) (walOp, error) {
	if len(b) == 0 {
		return walOp{}, fmt.Errorf("spatialdb: empty WAL record")
	}
	op, rest := b[0], b[1:]
	switch op {
	case opInsert:
		id, loc, data, tail, err := readInsertBody(rest)
		if err != nil {
			return walOp{}, err
		}
		if len(tail) != 0 {
			return walOp{}, fmt.Errorf("spatialdb: %d trailing bytes after WAL insert", len(tail))
		}
		return walOp{op: op, id: id, loc: loc, data: data}, nil
	case opDelete:
		if len(rest) != 24 {
			return walOp{}, fmt.Errorf("spatialdb: WAL delete record is %d bytes, want 24", len(rest))
		}
		return walOp{
			op: op,
			id: binary.LittleEndian.Uint64(rest[0:8]),
			loc: geom.Pt(
				math.Float64frombits(binary.LittleEndian.Uint64(rest[8:16])),
				math.Float64frombits(binary.LittleEndian.Uint64(rest[16:24])),
			),
		}, nil
	case opBatch:
		if len(rest) < 16 {
			return walOp{}, fmt.Errorf("spatialdb: WAL batch header truncated")
		}
		wb := walBatch{
			id:         binary.LittleEndian.Uint64(rest[0:8]),
			shardCount: int(binary.LittleEndian.Uint32(rest[8:12])),
		}
		n := binary.LittleEndian.Uint32(rest[12:16])
		rest = rest[16:]
		wb.recs = make([]Record, 0, n)
		for i := uint32(0); i < n; i++ {
			id, loc, data, tail, err := readInsertBody(rest)
			if err != nil {
				return walOp{}, err
			}
			wb.recs = append(wb.recs, Record{ID: id, Loc: loc, Data: data})
			rest = tail
		}
		if len(rest) != 0 {
			return walOp{}, fmt.Errorf("spatialdb: %d trailing bytes after WAL batch", len(rest))
		}
		return walOp{op: op, batch: wb}, nil
	case opCommit:
		if len(rest) != 8 {
			return walOp{}, fmt.Errorf("spatialdb: WAL commit record is %d bytes, want 8", len(rest))
		}
		return walOp{op: op, batch: walBatch{id: binary.LittleEndian.Uint64(rest)}}, nil
	default:
		return walOp{}, fmt.Errorf("spatialdb: unknown WAL op %d", op)
	}
}
