package spatialdb

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"popana/internal/faultinject"
	"popana/internal/geom"
	"popana/internal/linearquad"
	"popana/internal/quadtree"
)

// Query is a spatial selection: exactly one of Window, Nearest, or
// Within must be set; Filter optionally post-filters records.
type Query struct {
	// Window selects records inside a closed rectangle.
	Window *geom.Rect
	// Nearest selects the K records closest to At.
	Nearest *NearestSpec
	// Within selects records within Radius of At.
	Within *WithinSpec
	// Filter keeps only records for which it returns true (applied
	// after the spatial predicate). Nil keeps everything. The filter
	// always runs on the querying goroutine — never concurrently, even
	// when the scan fans out across shards — and must not call back
	// into the same table's mutating methods.
	Filter func(Record) bool
	// MaxNodes, when positive, bounds the number of index nodes a
	// window or radius query may visit, summed across every shard it
	// touches. A query that exhausts the budget returns the partial
	// result accumulated so far with Cost.Truncated set, degrading
	// gracefully instead of traversing without bound. Zero means
	// unlimited. Nearest queries ignore it (their work is bounded by
	// K).
	MaxNodes int
}

// NearestSpec parameterizes a k-nearest query.
type NearestSpec struct {
	At geom.Point
	K  int
}

// WithinSpec parameterizes a radius query.
type WithinSpec struct {
	At     geom.Point
	Radius float64
}

// Cost is the measured work of executing a query, summed across every
// shard the query touched.
type Cost struct {
	NodesVisited   int
	LeavesVisited  int
	RecordsScanned int
	// Truncated reports that the query's MaxNodes budget stopped the
	// traversal early; the returned records are a partial result.
	Truncated bool
}

func (q Query) validate() error {
	set := 0
	if q.Window != nil {
		set++
		if err := validateRegion(*q.Window); err != nil {
			return err
		}
	}
	if q.Nearest != nil {
		set++
		if err := validatePoint(q.Nearest.At); err != nil {
			return err
		}
		if q.Nearest.K <= 0 {
			return fmt.Errorf("spatialdb: nearest K %d <= 0", q.Nearest.K)
		}
	}
	if q.Within != nil {
		set++
		if err := validatePoint(q.Within.At); err != nil {
			return err
		}
		if math.IsNaN(q.Within.Radius) || math.IsInf(q.Within.Radius, 0) || q.Within.Radius <= 0 {
			return fmt.Errorf("spatialdb: radius %g must be a positive finite number", q.Within.Radius)
		}
	}
	if set != 1 {
		return fmt.Errorf("spatialdb: query must set exactly one of Window, Nearest, Within (got %d)", set)
	}
	return nil
}

// queryBox returns the bounding rectangle of a window or radius query,
// the rectangle shard pruning and tree traversal both test against.
func queryBox(q Query) geom.Rect {
	if q.Window != nil {
		return *q.Window
	}
	w := q.Within
	return geom.R(w.At.X-w.Radius, w.At.Y-w.Radius, w.At.X+w.Radius, w.At.Y+w.Radius)
}

// ranger abstracts the two range-serving representations — the live
// quadtree and the frozen linear snapshot — which share the budgeted
// traversal signature, so Select and CountRange are written once per
// path.
type ranger interface {
	RangeBudgeted(geom.Rect, int, quadtree.Visit[Record]) quadtree.RangeStats
	CountRangeBudgeted(geom.Rect, int) quadtree.RangeStats
}

func costOf(st quadtree.RangeStats) Cost {
	return Cost{st.NodesVisited, st.LeavesVisited, st.RecordsScanned, st.Truncated}
}

func addCost(c *Cost, st quadtree.RangeStats) {
	c.NodesVisited += st.NodesVisited
	c.LeavesVisited += st.LeavesVisited
	c.RecordsScanned += st.RecordsScanned
	c.Truncated = c.Truncated || st.Truncated
}

// scanRange runs the window or radius scan of q over idx with the given
// node budget, delivering every spatially matching record to emit (the
// caller applies Query.Filter).
func scanRange(idx ranger, q Query, maxNodes int, emit func(Record)) quadtree.RangeStats {
	if q.Window != nil {
		return idx.RangeBudgeted(*q.Window, maxNodes, func(_ geom.Point, r Record) bool {
			emit(r)
			return true
		})
	}
	w := q.Within
	r2 := w.Radius * w.Radius
	return idx.RangeBudgeted(queryBox(q), maxNodes, func(p geom.Point, rec Record) bool {
		if p.Dist2(w.At) <= r2 {
			emit(rec)
		}
		return true
	})
}

// forShards runs f(i) for every i in [0, n) on a bounded worker pool of
// min(n, GOMAXPROCS) goroutines. Workers claim indices from an atomic
// counter; callers regain determinism by writing results into slot i
// and merging in index order.
func forShards(n int, f func(int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}

// Select executes the query and returns matching records with the
// measured cost. Results of window/radius queries are in shard (Morton)
// order, unspecified within a shard; nearest queries return
// closest-first.
//
// The query first prunes to the shards whose cell touches the query
// rectangle. On quiescent shards — no mutation since their snapshots
// were built — the scan is served from the frozen snapshots without
// acquiring any lock, fanned out across a bounded worker pool and
// revalidated against the shard epochs so the merged result is one
// consistent cut. Otherwise the query takes the target shards' read
// locks (ascending order) and scans whichever representation is current
// per shard, rebuilding snapshots that crossed the staleness threshold.
// Both paths honor MaxNodes — budgeted queries scan shards sequentially,
// handing each shard the budget the previous ones left over — and
// report the same Cost fields.
func (t *Table) Select(q Query) ([]Record, Cost, error) {
	if err := q.validate(); err != nil {
		return nil, Cost{}, err
	}
	t.inj.Delay(faultinject.QueryLatency)
	keep := q.Filter
	if keep == nil {
		keep = func(Record) bool { return true }
	}
	if t.lazyMode() {
		return t.selectLazy(q, keep)
	}
	if q.Nearest != nil {
		return t.selectNearest(*q.Nearest, keep)
	}
	targets := t.shardsOverlapping(queryBox(q))
	switch len(targets) {
	case 0:
		return nil, Cost{}, nil
	case 1:
		out, cost := selectShard(targets[0], t.snapEvery, q, keep)
		return out, cost, nil
	}
	if q.MaxNodes <= 0 {
		if out, cost, ok := t.selectMultiFast(q, targets, keep); ok {
			return out, cost, nil
		}
	}
	out, cost := t.selectMultiLocked(q, targets, keep)
	return out, cost, nil
}

// selectShard serves a query confined to one shard — the layout every
// query sees on a single-shard table, where it is bit-identical to the
// pre-sharding engine: lock-free off a fresh snapshot, else under the
// shard read lock from whichever representation is current.
func selectShard(s *shard, every uint64, q Query, keep func(Record) bool) ([]Record, Cost) {
	var out []Record
	emit := func(r Record) {
		if keep(r) {
			out = append(out, r)
		}
	}
	if f, _ := s.loadFresh(); f != nil {
		return out, costOf(scanRange(f, q, q.MaxNodes, emit))
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return out, costOf(scanRange(s.rangerLocked(every), q, q.MaxNodes, emit))
}

// selectMultiFast serves an unbudgeted multi-shard query from the
// shards' fresh snapshots with no locks: a cross-shard seqlock. It
// loads every target's fresh snapshot with its epoch stamp, scans the
// snapshots in parallel, then revalidates the epochs; if any target
// absorbed a write meanwhile, the merged result could straddle a
// cross-shard batch, so the attempt is retried once and then falls
// back to the locked path. ok=false when a snapshot was stale or the
// epochs kept moving.
func (t *Table) selectMultiFast(q Query, targets []*shard, keep func(Record) bool) ([]Record, Cost, bool) {
	n := len(targets)
	snaps := make([]*linearquad.Frozen[Record], n)
	epochs := make([]uint64, n)
	outs := make([][]Record, n)
	stats := make([]quadtree.RangeStats, n)
	for attempt := 0; attempt < 2; attempt++ {
		for i, s := range targets {
			f, e := s.loadFresh()
			if f == nil {
				return nil, Cost{}, false
			}
			snaps[i], epochs[i] = f, e
		}
		forShards(n, func(i int) {
			outs[i] = outs[i][:0]
			stats[i] = scanRange(snaps[i], q, 0, func(r Record) { outs[i] = append(outs[i], r) })
		})
		stable := true
		for i, s := range targets {
			if s.epoch.Load() != epochs[i] {
				stable = false
				break
			}
		}
		if !stable {
			continue
		}
		var out []Record
		var cost Cost
		for i := range outs {
			// Deterministic merge in shard order; Filter runs here, on
			// the querying goroutine.
			for _, r := range outs[i] {
				if keep(r) {
					out = append(out, r)
				}
			}
			addCost(&cost, stats[i])
		}
		return out, cost, true
	}
	return nil, Cost{}, false
}

// selectMultiLocked serves a multi-shard query under all target shard
// read locks (ascending order), which pins one consistent cut: a
// cross-shard InsertBatch holds all its write locks until the last
// sub-batch lands, so no reader on this path can see half a batch.
// Unbudgeted queries scan the shards in parallel; budgeted queries scan
// sequentially in shard order, handing each shard the budget the
// previous ones left over, so NodesVisited never exceeds MaxNodes and
// Truncated keeps its single-tree meaning.
func (t *Table) selectMultiLocked(q Query, targets []*shard, keep func(Record) bool) ([]Record, Cost) {
	rlockShards(targets)
	defer runlockShards(targets)
	if q.MaxNodes > 0 {
		var out []Record
		var cost Cost
		emit := func(r Record) {
			if keep(r) {
				out = append(out, r)
			}
		}
		remaining := q.MaxNodes
		for _, s := range targets {
			if remaining <= 0 {
				// Budget exhausted with shards still unscanned: the
				// result is partial even though the last scan stopped
				// exactly at its bound.
				cost.Truncated = true
				break
			}
			st := scanRange(s.rangerLocked(t.snapEvery), q, remaining, emit)
			addCost(&cost, st)
			remaining -= st.NodesVisited
			if st.Truncated {
				break
			}
		}
		return out, cost
	}
	n := len(targets)
	outs := make([][]Record, n)
	stats := make([]quadtree.RangeStats, n)
	forShards(n, func(i int) {
		stats[i] = scanRange(targets[i].rangerLocked(t.snapEvery), q, 0, func(r Record) { outs[i] = append(outs[i], r) })
	})
	var out []Record
	var cost Cost
	for i := range outs {
		for _, r := range outs[i] {
			if keep(r) {
				out = append(out, r)
			}
		}
		addCost(&cost, stats[i])
	}
	return out, cost
}

// selectNearest serves a k-nearest query. On a multi-shard table every
// shard can hold one of the K nearest, so it takes a consistent cut
// under every shard read lock, collects each shard's local K nearest in
// parallel, and merges them by (distance, x, y) — a deterministic order
// even though worker scheduling is not.
func (t *Table) selectNearest(spec NearestSpec, keep func(Record) bool) ([]Record, Cost, error) {
	if len(t.shards) == 1 {
		s := t.shards[0]
		s.mu.RLock()
		defer s.mu.RUnlock()
		pts := s.index.KNearest(spec.At, spec.K)
		out := make([]Record, 0, len(pts))
		for _, p := range pts {
			if rec, ok := s.index.Get(p); ok && keep(rec) {
				out = append(out, rec)
			}
		}
		// KNearest is not instrumented; report the records touched.
		return out, Cost{RecordsScanned: len(pts)}, nil
	}
	rlockShards(t.shards)
	defer runlockShards(t.shards)
	per := make([][]geom.Point, len(t.shards))
	forShards(len(t.shards), func(i int) {
		per[i] = t.shards[i].index.KNearest(spec.At, spec.K)
	})
	type cand struct {
		p  geom.Point
		d2 float64
	}
	scanned := 0
	cands := make([]cand, 0, 2*spec.K)
	for _, pts := range per {
		scanned += len(pts)
		for _, p := range pts {
			cands = append(cands, cand{p, p.Dist2(spec.At)})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].d2 != cands[j].d2 {
			return cands[i].d2 < cands[j].d2
		}
		if cands[i].p.X != cands[j].p.X {
			return cands[i].p.X < cands[j].p.X
		}
		return cands[i].p.Y < cands[j].p.Y
	})
	if len(cands) > spec.K {
		cands = cands[:spec.K]
	}
	out := make([]Record, 0, len(cands))
	for _, c := range cands {
		if rec, ok := t.shardOf(c.p).index.Get(c.p); ok && keep(rec) {
			out = append(out, rec)
		}
	}
	return out, Cost{RecordsScanned: scanned}, nil
}

// CountRange returns the number of records inside the closed window
// with the measured cost, without materializing the records. It uses
// the same budgeted traversal, shard pruning, budget hand-down, and
// snapshot fast paths as a window Select — Cost.Truncated is reported
// identically for the same window and budget — so on quiescent shards
// it runs lock-free and allocation-free.
func (t *Table) CountRange(window geom.Rect, maxNodes int) (int, Cost, error) {
	if err := validateRegion(window); err != nil {
		return 0, Cost{}, err
	}
	t.inj.Delay(faultinject.QueryLatency)
	if t.lazyMode() {
		return t.countLazy(window, maxNodes)
	}
	targets := t.shardsOverlapping(window)
	switch len(targets) {
	case 0:
		return 0, Cost{}, nil
	case 1:
		s := targets[0]
		if f, _ := s.loadFresh(); f != nil {
			st := f.CountRangeBudgeted(window, maxNodes)
			return st.Matched, costOf(st), nil
		}
		s.mu.RLock()
		defer s.mu.RUnlock()
		st := s.rangerLocked(t.snapEvery).CountRangeBudgeted(window, maxNodes)
		return st.Matched, costOf(st), nil
	}
	if maxNodes <= 0 {
		if cnt, cost, ok := t.countMultiFast(window, targets); ok {
			return cnt, cost, nil
		}
	}
	cnt, cost := t.countMultiLocked(window, targets, maxNodes)
	return cnt, cost, nil
}

// countMultiFast is the counting twin of selectMultiFast: parallel
// lock-free counts off fresh snapshots, revalidated against the shard
// epochs.
func (t *Table) countMultiFast(window geom.Rect, targets []*shard) (int, Cost, bool) {
	n := len(targets)
	snaps := make([]*linearquad.Frozen[Record], n)
	epochs := make([]uint64, n)
	stats := make([]quadtree.RangeStats, n)
	for attempt := 0; attempt < 2; attempt++ {
		for i, s := range targets {
			f, e := s.loadFresh()
			if f == nil {
				return 0, Cost{}, false
			}
			snaps[i], epochs[i] = f, e
		}
		forShards(n, func(i int) {
			stats[i] = snaps[i].CountRangeBudgeted(window, 0)
		})
		stable := true
		for i, s := range targets {
			if s.epoch.Load() != epochs[i] {
				stable = false
				break
			}
		}
		if !stable {
			continue
		}
		cnt := 0
		var cost Cost
		for i := range stats {
			cnt += stats[i].Matched
			addCost(&cost, stats[i])
		}
		return cnt, cost, true
	}
	return 0, Cost{}, false
}

// countMultiLocked is the counting twin of selectMultiLocked:
// sequential budget hand-down when bounded, parallel otherwise, all
// under the target shards' read locks.
func (t *Table) countMultiLocked(window geom.Rect, targets []*shard, maxNodes int) (int, Cost) {
	rlockShards(targets)
	defer runlockShards(targets)
	if maxNodes > 0 {
		cnt := 0
		var cost Cost
		remaining := maxNodes
		for _, s := range targets {
			if remaining <= 0 {
				cost.Truncated = true
				break
			}
			st := s.rangerLocked(t.snapEvery).CountRangeBudgeted(window, remaining)
			cnt += st.Matched
			addCost(&cost, st)
			remaining -= st.NodesVisited
			if st.Truncated {
				break
			}
		}
		return cnt, cost
	}
	n := len(targets)
	stats := make([]quadtree.RangeStats, n)
	forShards(n, func(i int) {
		stats[i] = targets[i].rangerLocked(t.snapEvery).CountRangeBudgeted(window, 0)
	})
	cnt := 0
	var cost Cost
	for i := range stats {
		cnt += stats[i].Matched
		addCost(&cost, stats[i])
	}
	return cnt, cost
}

// Estimate is the model-based prediction Explain produces.
type Estimate struct {
	// Blocks is the expected number of leaf blocks the query touches.
	Blocks float64
	// Records is the expected number of records scanned.
	Records float64
	// Selectivity is the fraction of the table expected to match.
	Selectivity float64
	// Approximate marks estimates derived from the closed-form
	// occupancy heuristic because every solver rung failed at table
	// creation; treat them as order-of-magnitude guidance.
	Approximate bool
	// FromDisk marks an estimate for a table served from sealed runs
	// (DurableOptions.Lazy): Blocks then predicts entry-block reads —
	// cache hits included — rather than in-memory leaf visits.
	FromDisk bool
	// Batched marks an estimate produced by ExplainBatch: Blocks and
	// Records sum over the whole batch, Selectivity averages it.
	Batched bool
	// RunsConsulted and RunsPruned report, for a lazy table, how many
	// serving runs the per-run Morton-prefix filters would admit versus
	// exclude over the query's Z-interval (summed across the batch when
	// Batched). A pruned run costs a scan nothing: no cursor is opened
	// and no block is read. Both are zero for in-memory tables.
	RunsConsulted, RunsPruned int
}

// Explain predicts the cost of a query from the population model before
// running it: the table holds ~n/occ blocks; a window of area fraction
// s touches about s·L interior blocks plus a boundary band of about
// perimeter/blockSide blocks, with blockSide = sqrt(region/L). The
// shard partition does not change the estimate — the population model
// composes across disjoint cells, so blocks-touched is invariant under
// the partition — and Explain takes no tree lock: the record count
// comes from the shards' atomic counters and the region is immutable.
// On a lazy table it additionally consults the serving runs'
// Morton-prefix filters (holding each overlapping shard's stack
// mutex, a leaf lock, just long enough to pin the stack) so
// RunsConsulted and RunsPruned report what a scan would actually
// open.
func (t *Table) Explain(q Query) (Estimate, error) {
	e, err := t.explain(q)
	if err == nil && t.lazyMode() {
		// The population model composes across representations too: the
		// sealed runs pack entries into TargetBlockBytes blocks at the
		// same records-per-block ballpark, so the block estimate carries
		// over; FromDisk tells the caller the unit changed.
		e.FromDisk = true
		if q.Nearest == nil {
			e.RunsConsulted, e.RunsPruned = t.runFilterEstimate(queryBox(q))
		}
	}
	return e, err
}

// ExplainBatch predicts the aggregate cost of answering every window
// of a CountRangeBatch (or an equivalent batched fan-out): the
// per-window model estimates summed, marked Batched. On a lazy table
// the serving runs' Morton-prefix filters are consulted per
// (shard, window) pair over each window's Z-interval, so RunsPruned
// counts the stack entries a batched scan skips without opening a
// cursor — the measured complement of the Blocks estimate.
func (t *Table) ExplainBatch(windows []geom.Rect) (Estimate, error) {
	agg := Estimate{Batched: true, Approximate: t.occApprox}
	for i := range windows {
		w := windows[i]
		e, err := t.explain(Query{Window: &w})
		if err != nil {
			return Estimate{}, fmt.Errorf("spatialdb: explain batch in %q: window %d: %w", t.name, i, err)
		}
		agg.Blocks += e.Blocks
		agg.Records += e.Records
		agg.Selectivity += e.Selectivity
	}
	if len(windows) > 0 {
		agg.Selectivity /= float64(len(windows))
	}
	if t.lazyMode() {
		agg.FromDisk = true
		for i := range windows {
			c, p := t.runFilterEstimate(windows[i])
			agg.RunsConsulted += c
			agg.RunsPruned += p
		}
	}
	return agg, nil
}

// runFilterEstimate counts, per shard overlapping box, the serving
// runs whose prefix filter admits the box's Z-interval versus those it
// excludes — without opening a cursor or reading a block.
func (t *Table) runFilterEstimate(box geom.Rect) (consulted, pruned int) {
	for si, s := range t.shards {
		if !s.region.OverlapsClosed(box) {
			continue
		}
		zmin := s.coder.Code(geom.Pt(box.MinX, box.MinY))
		zmax := s.coder.Code(geom.Pt(box.MaxX, box.MaxY))
		stack := t.dur.shards[si].acquireStack()
		for _, or := range stack {
			if or.reader.MayContainRange(zmin, zmax) {
				consulted++
			} else {
				pruned++
			}
		}
		releaseRuns(stack)
	}
	return consulted, pruned
}

func (t *Table) explain(q Query) (Estimate, error) {
	if err := q.validate(); err != nil {
		return Estimate{}, err
	}
	n := float64(t.Len())
	region := t.region
	if n == 0 {
		return Estimate{Approximate: t.occApprox}, nil
	}
	leaves := math.Max(n/t.occ, 1)
	est := func(w geom.Rect) Estimate {
		// Clip the window to the region.
		minX := math.Max(w.MinX, region.MinX)
		minY := math.Max(w.MinY, region.MinY)
		maxX := math.Min(w.MaxX, region.MaxX)
		maxY := math.Min(w.MaxY, region.MaxY)
		if minX >= maxX || minY >= maxY {
			return Estimate{Approximate: t.occApprox}
		}
		cw, ch := maxX-minX, maxY-minY
		frac := cw * ch / region.Area()
		side := math.Sqrt(region.Area() / leaves) // typical block side
		boundary := 2 * (cw + ch) / side          // blocks straddling the edge
		blocks := math.Min(frac*leaves+boundary+1, leaves)
		return Estimate{
			Blocks:      blocks,
			Records:     blocks * t.occ,
			Selectivity: frac,
			Approximate: t.occApprox,
		}
	}
	switch {
	case q.Window != nil:
		return est(*q.Window), nil
	case q.Within != nil:
		w := q.Within
		e := est(geom.R(w.At.X-w.Radius, w.At.Y-w.Radius, w.At.X+w.Radius, w.At.Y+w.Radius))
		// A disc covers π/4 of its bounding box.
		e.Selectivity *= math.Pi / 4
		return e, nil
	default:
		// K nearest: expect to inspect ~K records plus one block's
		// worth of neighbors.
		k := float64(q.Nearest.K)
		return Estimate{
			Blocks:      math.Min(k/t.occ+1, leaves),
			Records:     k + t.occ,
			Selectivity: k / n,
			Approximate: t.occApprox,
		}, nil
	}
}

// Stats summarizes the table for monitoring: measured occupancy next to
// the model prediction it should hover near.
type Stats struct {
	Records           int
	Blocks            int
	Height            int
	MeasuredOccupancy float64
	ModelOccupancy    float64
	// ModelApproximate marks ModelOccupancy as the closed-form
	// heuristic rather than a solved distribution.
	ModelApproximate bool

	// DiskRuns counts the sealed run files across all shards of a
	// durable table (zero for in-memory tables).
	DiskRuns int
	// CacheHits/CacheMisses/CacheEvictions and CacheUsedBytes /
	// CacheBudgetBytes expose the block cache a lazy table reads
	// through; all zero when the table is not lazy or caching is
	// disabled (DurableOptions.CacheBytes < 0).
	CacheHits, CacheMisses, CacheEvictions int64
	CacheUsedBytes, CacheBudgetBytes       int64
	// RunsConsulted and RunsPruned count, across the table's lifetime,
	// the sealed runs lazy reads opened a cursor or reader on versus
	// the runs their Morton-prefix filters excluded before any block
	// was touched. Their ratio is the measured pruning power of the
	// run filters on this workload.
	RunsConsulted, RunsPruned int64
}

// Stats returns the table's current statistics, aggregated across
// shards: Records and Blocks sum the shards' contributions, Height is
// the shard-key depth plus the tallest shard tree. A shard with a fresh
// snapshot contributes lock-free from the snapshot; only stale shards
// pay a Census walk under their read lock, so monitoring reads rarely
// queue behind writers and never behind writers to other shards.
//
// On a lazy durable table Records comes from the shards' atomic
// counters, Blocks counts entry blocks across the serving run stacks
// (so MeasuredOccupancy is records per disk block), Height is the
// shard-key depth (there is no resident tree), and the Cache* fields
// report the block cache.
func (t *Table) Stats() Stats {
	var st Stats
	if t.lazyMode() {
		rec, blocks := 0, 0
		for si, s := range t.shards {
			rec += int(s.count.Load())
			stack := t.dur.shards[si].acquireStack()
			for _, or := range stack {
				blocks += or.reader.NumBlocks()
			}
			releaseRuns(stack)
		}
		occ := math.NaN()
		if blocks > 0 {
			occ = float64(rec) / float64(blocks)
		}
		st = Stats{
			Records:           rec,
			Blocks:            blocks,
			Height:            t.shardLevels,
			MeasuredOccupancy: occ,
			ModelOccupancy:    t.occ,
			ModelApproximate:  t.occApprox,
		}
	} else {
		var rec, blocks, maxH int
		for _, s := range t.shards {
			r, b, h := s.statsPart()
			rec += r
			blocks += b
			if h > maxH {
				maxH = h
			}
		}
		occ := math.NaN()
		if blocks > 0 {
			occ = float64(rec) / float64(blocks)
		}
		st = Stats{
			Records:           rec,
			Blocks:            blocks,
			Height:            t.shardLevels + maxH,
			MeasuredOccupancy: occ,
			ModelOccupancy:    t.occ,
			ModelApproximate:  t.occApprox,
		}
	}
	if t.dur != nil {
		for _, ds := range t.dur.shards {
			st.DiskRuns += ds.runCount()
		}
		cs := t.dur.cache.Stats()
		st.CacheHits, st.CacheMisses, st.CacheEvictions = cs.Hits, cs.Misses, cs.Evictions
		st.CacheUsedBytes, st.CacheBudgetBytes = cs.Used, cs.Budget
		st.RunsConsulted = t.dur.runsConsulted.Load()
		st.RunsPruned = t.dur.runsPruned.Load()
	}
	return st
}
