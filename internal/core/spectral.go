package core

import (
	"fmt"
	"math"

	"popana/internal/fmath"
	"popana/internal/vecmat"
)

// Spectral diagnostics. Because the stationarity condition is the
// Perron left-eigenproblem of T, the convergence speed of the paper's
// iteration — and the relaxation time of the physical structure toward
// its steady state — is governed by the spectral gap |λ₂|/λ₁. These
// helpers expose it.

// Spectrum summarizes the dominant spectral structure of a model's
// transform matrix.
type Spectrum struct {
	// Lambda1 is the Perron eigenvalue — identical to the
	// normalization scalar a of the expected distribution.
	Lambda1 float64
	// Lambda2Abs is the magnitude of the subdominant eigenvalue.
	Lambda2Abs float64
	// Gap is Lambda2Abs/Lambda1: the per-insertion contraction factor
	// of deviations from the steady state (smaller = faster mixing).
	Gap float64
	// Left and Right are the Perron left and right eigenvectors,
	// normalized to Σ = 1 and e·r = 1 respectively.
	Left, Right vecmat.Vec
}

// Spectrum computes the dominant and subdominant eigenvalues of T by
// power iteration with deflation. iterations bounds the inner loops
// (zero selects 20000).
func (m *Model) Spectrum(iterations int) (Spectrum, error) {
	if iterations == 0 {
		iterations = 20000
	}
	n := m.Types()
	// Dominant left eigenvector: the expected distribution itself.
	d, err := m.Solve()
	if err != nil {
		return Spectrum{}, err
	}
	e := d.E
	lambda1 := d.A

	// Dominant right eigenvector by power iteration on T·x.
	r := uniformVec(n)
	for it := 0; it < iterations; it++ {
		next := m.T.MulVec(r)
		next = next.Scale(1 / next.Norm1())
		if next.Sub(r).NormInf() < 1e-14 {
			r = next
			break
		}
		r = next
	}
	// Normalize so e·r = 1 (biorthogonal scaling for deflation).
	er := e.Dot(r)
	if fmath.Zero(er) {
		return Spectrum{}, fmt.Errorf("core: degenerate eigenvector pairing in %s", m.Desc)
	}
	r = r.Scale(1 / er)

	// Subdominant magnitude: iterate x ← x·T − λ₁·(x·r)·e, which
	// removes the dominant component each step; the growth rate of the
	// deflated iterate converges to |λ₂|. A complex or defective λ₂
	// still yields the correct magnitude on time-average, so average
	// the growth over a window.
	x := make(vecmat.Vec, n)
	for i := range x {
		x[i] = math.Cos(float64(3*i + 1)) // arbitrary non-degenerate start
	}
	deflate := func(v vecmat.Vec) vecmat.Vec {
		c := v.Dot(r)
		return v.Sub(e.Scale(c))
	}
	x = deflate(x)
	if fmath.Zero(x.NormInf()) {
		return Spectrum{}, fmt.Errorf("core: deflation annihilated the start vector in %s", m.Desc)
	}
	x = x.Scale(1 / x.Norm1())
	var growths []float64
	for it := 0; it < iterations; it++ {
		y := deflate(m.T.VecMul(x))
		norm := y.Norm1()
		if fmath.Zero(norm) {
			// T restricted to the complement is nilpotent here; λ₂=0.
			return Spectrum{Lambda1: lambda1, Lambda2Abs: 0, Gap: 0, Left: e, Right: r}, nil
		}
		growths = append(growths, norm)
		x = y.Scale(1 / norm)
		if len(growths) > 64 {
			growths = growths[1:]
			// Convergence check on the windowed geometric mean.
			if it > 256 && relSpread(growths) < 1e-10 {
				break
			}
		}
	}
	l2 := geoMean(growths)
	return Spectrum{
		Lambda1:    lambda1,
		Lambda2Abs: l2,
		Gap:        l2 / lambda1,
		Left:       e,
		Right:      r,
	}, nil
}

// MixingInsertions estimates how many insertions (per current node) the
// structure needs to forget a perturbation by factor 1/e — the
// relaxation time implied by the spectral gap.
func (s Spectrum) MixingInsertions() float64 {
	if s.Gap <= 0 {
		return 0
	}
	if s.Gap >= 1 {
		return math.Inf(1)
	}
	return 1 / -math.Log(s.Gap)
}

func geoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

func relSpread(xs []float64) float64 {
	lo, hi := xs[0], xs[0]
	for _, x := range xs[1:] {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	if lo <= 0 {
		return math.Inf(1)
	}
	return (hi - lo) / lo
}
