package core

import (
	"math"
	"testing"

	"popana/internal/solver"
)

// FuzzTransformMatrix builds the generalized PR point model for random
// valid (capacity, fanout) pairs and checks the structural invariants
// of Section III: every T entry non-negative and finite, shift rows
// summing to exactly 1, the split row summing to (F^(m+1)−1)/(F^m−1),
// and the paper's fixed-point solve converging to a valid distribution
// with a small residual.
func FuzzTransformMatrix(f *testing.F) {
	f.Add(uint8(1), uint8(0))
	f.Add(uint8(1), uint8(2))
	f.Add(uint8(8), uint8(2))
	f.Add(uint8(23), uint8(4))
	f.Fuzz(func(t *testing.T, capRaw, fanRaw uint8) {
		capacity := 1 + int(capRaw)%24
		fanouts := [...]int{2, 3, 4, 8, 16}
		fanout := fanouts[int(fanRaw)%len(fanouts)]
		m, err := NewPointModel(capacity, fanout)
		if err != nil {
			t.Fatalf("NewPointModel(%d, %d): %v", capacity, fanout, err)
		}

		for i := 0; i < m.T.Rows; i++ {
			for j := 0; j < m.T.Cols; j++ {
				v := m.T.At(i, j)
				if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("T[%d][%d] = %v for capacity %d fanout %d", i, j, v, capacity, fanout)
				}
			}
		}
		for i := 0; i < capacity; i++ {
			if sum := m.T.Row(i).Sum(); sum != 1 {
				t.Fatalf("shift row %d sums to %v, want exactly 1", i, sum)
			}
		}
		F := float64(fanout)
		wantSplit := (math.Pow(F, float64(capacity+1)) - 1) / (math.Pow(F, float64(capacity)) - 1)
		if got := m.SplitRow().Sum(); math.Abs(got-wantSplit) > 1e-9*wantSplit {
			t.Fatalf("split row sums to %v, want (F^(m+1)-1)/(F^m-1) = %v", got, wantSplit)
		}

		// The default 1e-14 step tolerance can stall in rounding noise at
		// the largest capacity×fanout corners; 1e-11 still dominates the
		// 1e-10 residual assertion below.
		d, err := m.SolveOpts(solver.Options{Tolerance: 1e-11})
		if err != nil {
			t.Fatalf("Solve for capacity %d fanout %d: %v", capacity, fanout, err)
		}
		if res := m.Residual(d.E); res > 1e-10 {
			t.Fatalf("residual %v after convergence (capacity %d, fanout %d)", res, capacity, fanout)
		}
		if sum := d.E.Sum(); math.Abs(sum-1) > 1e-12 {
			t.Fatalf("distribution sums to %v, want 1", sum)
		}
		for i, e := range d.E {
			if e <= 0 {
				t.Fatalf("e[%d] = %v, want strictly positive (Perron–Frobenius)", i, e)
			}
		}
	})
}
