package core

import (
	"math"
	"testing"

	"popana/internal/xrand"
)

func TestLineModelRows(t *testing.T) {
	p := 0.5
	m, err := NewLineModel(2, 4, LineModelOptions{CrossProb: p, MaxOccupancy: 6})
	if err != nil {
		t.Fatal(err)
	}
	// Rows below the threshold shift occupancy.
	for i := 0; i < 2; i++ {
		for j := 0; j < m.Types(); j++ {
			want := 0.0
			if j == i+1 {
				want = 1
			}
			if got := m.T.At(i, j); got != want {
				t.Errorf("T[%d][%d] = %v, want %v", i, j, got, want)
			}
		}
	}
	// Split rows: expected children with occupancy j is
	// 4·C(s,j)·p^j·(1-p)^(s-j) with s = i+1 segments.
	for i := 2; i <= 6; i++ {
		s := i + 1
		for j := 0; j <= 6; j++ {
			want := 4 * choose(s, j) * math.Pow(p, float64(j)) * math.Pow(1-p, float64(s-j))
			if j == 6 { // truncation folds the tail in
				for jj := 7; jj <= s; jj++ {
					want += 4 * choose(s, jj) * math.Pow(p, float64(jj)) * math.Pow(1-p, float64(s-jj))
				}
			}
			if got := m.T.At(i, j); math.Abs(got-want) > 1e-12 {
				t.Errorf("T[%d][%d] = %v, want %v", i, j, got, want)
			}
		}
	}
}

func TestLineModelSplitRowSumsToFanout(t *testing.T) {
	// PMR splits exactly once: every split row must sum to exactly F
	// (no recursive-split correction).
	m, err := NewLineModel(3, 4, LineModelOptions{CrossProb: 0.47})
	if err != nil {
		t.Fatal(err)
	}
	sums := m.T.RowSums()
	for i := 3; i < m.Types(); i++ {
		if math.Abs(sums[i]-4) > 1e-10 {
			t.Errorf("split row %d sums to %v, want 4", i, sums[i])
		}
	}
}

func TestLineModelSolves(t *testing.T) {
	for k := 1; k <= 8; k++ {
		m, err := NewLineModel(k, 4, LineModelOptions{})
		if err != nil {
			t.Fatal(err)
		}
		d, err := m.Solve()
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if tail := TailMass(d); tail > 1e-6 {
			t.Errorf("k=%d: truncation tail %v too heavy", k, tail)
		}
		// Occupancy must exceed what a PR point tree of the same
		// capacity achieves: PMR blocks can exceed the threshold.
		if occ := d.AverageOccupancy(); occ <= 0 {
			t.Errorf("k=%d: occupancy %v", k, occ)
		}
	}
}

func TestLineModelOccupancyGrowsWithP(t *testing.T) {
	// Higher crossing probability keeps more segments per child, so
	// the stationary occupancy must increase with p.
	prev := 0.0
	for _, p := range []float64{0.3, 0.4, 0.5, 0.6} {
		m, err := NewLineModel(4, 4, LineModelOptions{CrossProb: p})
		if err != nil {
			t.Fatal(err)
		}
		d, err := m.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if occ := d.AverageOccupancy(); occ <= prev {
			t.Errorf("occupancy not increasing at p=%v: %v <= %v", p, occ, prev)
		} else {
			prev = occ
		}
	}
}

func TestLineModelValidation(t *testing.T) {
	if _, err := NewLineModel(0, 4, LineModelOptions{}); err == nil {
		t.Error("threshold 0 accepted")
	}
	if _, err := NewLineModel(1, 1, LineModelOptions{}); err == nil {
		t.Error("fanout 1 accepted")
	}
	if _, err := NewLineModel(1, 4, LineModelOptions{CrossProb: 1.5}); err == nil {
		t.Error("crossing probability 1.5 accepted")
	}
	if _, err := NewLineModel(4, 4, LineModelOptions{MaxOccupancy: 3}); err == nil {
		t.Error("max occupancy below threshold accepted")
	}
}

func TestEstimateCrossProbChords(t *testing.T) {
	// Integral geometry: lines hitting a convex body in proportion to
	// perimeter gives p = 1/2 for a quadrant of a square; the
	// chord-endpoint model lands near that.
	p := EstimateCrossProb(xrand.New(1), 100000)
	if p < 0.45 || p > 0.55 {
		t.Errorf("chord crossing probability %v, expected ≈ 0.5", p)
	}
	// A chord crosses between 1 and 3 quadrants, so 4p in [1, 3].
	if e := ExpectedQuadrantsCrossed(4, p); e < 1 || e > 3 {
		t.Errorf("expected quadrants crossed %v outside [1,3]", e)
	}
}

func TestDefaultCrossProbDeterministic(t *testing.T) {
	a := DefaultCrossProb()
	b := DefaultCrossProb()
	if a != b {
		t.Errorf("DefaultCrossProb unstable: %v vs %v", a, b)
	}
	if a <= 0 || a >= 1 {
		t.Errorf("DefaultCrossProb = %v", a)
	}
}

func TestEstimateCrossProbPanicsOnBadSamples(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	EstimateCrossProb(xrand.New(1), 0)
}

func TestTailMassEmpty(t *testing.T) {
	if !math.IsNaN(TailMass(Distribution{})) {
		t.Error("TailMass of empty distribution not NaN")
	}
}
