package core

import (
	"fmt"

	"popana/internal/solver"
	"popana/internal/vecmat"
)

// Aging correction (Section IV).
//
// The base model assumes a new point is equally likely to land in any
// node, i.e. insertion probability proportional to the *count* of nodes
// of each type. In a real tree the probability is proportional to the
// *area* of the nodes of each type, and — because larger blocks fill
// faster and were created earlier — high-occupancy nodes are on average
// larger ("aging"). The paper derives the direction of the correction
// qualitatively: the stationary fraction of high-occupancy nodes must be
// lower than the count-weighted model predicts, and the predicted average
// occupancy must come down, both matching the sign of the observed
// discrepancy in Table 2.
//
// SolveWeighted makes that correction quantitative. Given relative
// weights wᵢ (the mean area of occupancy-i nodes relative to the overall
// mean node area, measured from simulation or estimated by any aging
// sub-model), insertions strike type i with probability
//
//	qᵢ = eᵢ·wᵢ / Σⱼ eⱼ·wⱼ,
//
// and the stationarity condition generalizes from ē·T = a·ē to the
// balance form
//
//	q(ē)·T − q(ē) = (a_q − 1)·ē,   a_q = Σᵢⱼ qᵢ·Tᵢⱼ,
//
// i.e. net new nodes appear in proportion ē. With wᵢ ≡ 1 this reduces
// exactly to the base model.

// SolveWeighted solves the aging-corrected fixed point for the given
// insertion weights (len(weights) == Types()). Weights must be positive;
// only their ratios matter.
//
// Unlike the base system, the balance form cannot be iterated as a
// normalized power step (the map e ↦ (qT − q)/(a_q−1) is expansive for
// a close to 1), so the system is solved by Newton–Raphson, warm-started
// from the unweighted solution — the weights the aging analysis produces
// are always a mild perturbation of 1.
func (m *Model) SolveWeighted(weights vecmat.Vec, opts solver.Options) (Distribution, error) {
	n := m.Types()
	if len(weights) != n {
		return Distribution{}, fmt.Errorf("core: %d weights for %d node types", len(weights), n)
	}
	for i, w := range weights {
		if w <= 0 {
			return Distribution{}, fmt.Errorf("core: weight %d = %g is not positive", i, w)
		}
	}
	rowSums := m.T.RowSums()
	F := func(e vecmat.Vec) vecmat.Vec {
		q := weighted(e, weights)
		aq := rowSums.Dot(q)
		flow := m.T.VecMul(q).Sub(q)
		out := make(vecmat.Vec, n)
		for i := 0; i < n-1; i++ {
			out[i] = flow[i] - (aq-1)*e[i]
		}
		out[n-1] = e.Sum() - 1
		return out
	}
	start := uniformVec(n)
	if base, err := m.Solve(); err == nil {
		start = base.E
	}
	// Newton needs no damping; reset a damping value meant for the
	// fixed-point solver so withDefaults validation stays happy.
	opts.Damping = 0
	res, err := solver.Newton(F, start, opts)
	if err != nil {
		return Distribution{}, fmt.Errorf("core: weighted solve of %s: %w", m.Desc, err)
	}
	e := res.X
	q := weighted(e, weights)
	d := Distribution{
		E:          e,
		A:          rowSums.Dot(q),
		Iterations: res.Iterations,
		Residual:   res.Residual,
	}
	if err := d.Validate(); err != nil {
		return Distribution{}, fmt.Errorf("core: weighted solve of %s produced an invalid distribution: %w", m.Desc, err)
	}
	return d, nil
}

// WeightedResidual returns ‖q·T − q − (a_q−1)·e‖∞ for a candidate
// aging-corrected distribution.
func (m *Model) WeightedResidual(e, weights vecmat.Vec) float64 {
	q := weighted(e, weights)
	aq := m.T.RowSums().Dot(q)
	flow := m.T.VecMul(q).Sub(q)
	r := 0.0
	for i := range e {
		v := flow[i] - (aq-1)*e[i]
		if v < 0 {
			v = -v
		}
		if v > r {
			r = v
		}
	}
	return r
}

func weighted(e, w vecmat.Vec) vecmat.Vec {
	q := make(vecmat.Vec, len(e))
	for i := range e {
		q[i] = e[i] * w[i]
	}
	return q.Normalize1()
}
