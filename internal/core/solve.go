package core

import (
	"fmt"
	"math"

	"popana/internal/solver"
	"popana/internal/vecmat"
)

// Solve computes the expected distribution ē of the model: the unique
// positive solution of ē·T = a·ē with Σē = 1.
//
// The method is the paper's own: iterate e ← (e·T)/‖e·T‖₁ from the
// uniform vector. Because the component sum of e·T equals a(e) when e is
// normalized, this is exactly the fixed-point iteration of the quadratic
// system — and simultaneously power iteration on the non-negative,
// primitive matrix T, so convergence to the unique positive solution is
// guaranteed at the rate |λ₂/λ₁|.
func (m *Model) Solve() (Distribution, error) {
	return m.SolveOpts(solver.Options{})
}

// SolveOpts is Solve with explicit numerical options.
func (m *Model) SolveOpts(opts solver.Options) (Distribution, error) {
	n := m.Types()
	x0 := uniformVec(n)
	step := func(e vecmat.Vec) vecmat.Vec {
		return m.T.VecMul(e).Normalize1()
	}
	res, err := solver.FixedPoint(step, x0, opts)
	if err != nil {
		return Distribution{}, fmt.Errorf("core: solving %s: %w", m.Desc, err)
	}
	e := res.X.Normalize1()
	d := Distribution{
		E:          e,
		A:          m.normalization(e),
		Iterations: res.Iterations,
		Residual:   res.Residual,
	}
	if err := d.Validate(); err != nil {
		return Distribution{}, fmt.Errorf("core: %s produced an invalid distribution: %w", m.Desc, err)
	}
	return d, nil
}

// SolveNewton solves the same system by Newton–Raphson on
//
//	Fᵢ(e) = (e·T − a(e)·e)ᵢ   for i = 0..n-2,
//	F_{n-1}(e) = Σe − 1,
//
// replacing the last (linearly dependent) balance equation with the
// simplex constraint. It exists to cross-validate Solve; the two must
// agree to ~1e-12 (enforced by tests).
func (m *Model) SolveNewton(opts solver.Options) (Distribution, error) {
	n := m.Types()
	F := func(e vecmat.Vec) vecmat.Vec {
		a := m.normalization(e)
		et := m.T.VecMul(e)
		out := make(vecmat.Vec, n)
		for i := 0; i < n-1; i++ {
			out[i] = et[i] - a*e[i]
		}
		out[n-1] = e.Sum() - 1
		return out
	}
	res, err := solver.Newton(F, uniformVec(n), opts)
	if err != nil {
		return Distribution{}, fmt.Errorf("core: Newton solve of %s: %w", m.Desc, err)
	}
	e := res.X
	d := Distribution{
		E:          e,
		A:          m.normalization(e),
		Iterations: res.Iterations,
		Residual:   res.Residual,
	}
	if err := d.Validate(); err != nil {
		return Distribution{}, fmt.Errorf("core: Newton solve of %s produced an invalid distribution: %w", m.Desc, err)
	}
	return d, nil
}

// SolveRobust solves the model with a fallback ladder — Newton first,
// then fixed-point iteration with escalating damping — returning the
// attempt log alongside the distribution. Use it where a failed solve
// must degrade rather than abort (the spatialdb layer does).
func (m *Model) SolveRobust(opts solver.Options) (Distribution, []solver.Attempt, error) {
	return m.SolveLadder(solver.LadderConfig{Options: opts})
}

// SolveLadder is SolveRobust with an explicit ladder configuration
// (damping floor, fault-injection hook).
func (m *Model) SolveLadder(cfg solver.LadderConfig) (Distribution, []solver.Attempt, error) {
	step := func(e vecmat.Vec) vecmat.Vec {
		return m.T.VecMul(e).Normalize1()
	}
	res, attempts, err := solver.Ladder(step, uniformVec(m.Types()), cfg)
	if err != nil {
		return Distribution{}, attempts, fmt.Errorf("core: ladder solve of %s: %w", m.Desc, err)
	}
	e := res.X.Normalize1()
	d := Distribution{
		E:          e,
		A:          m.normalization(e),
		Iterations: res.Iterations,
		Residual:   res.Residual,
	}
	if err := d.Validate(); err != nil {
		return Distribution{}, attempts, fmt.Errorf("core: ladder solve of %s produced an invalid distribution: %w", m.Desc, err)
	}
	return d, attempts, nil
}

// OccupancyHeuristic returns a closed-form approximation to the expected
// average occupancy that needs no iterative solve: the midpoint between
// the post-split occupancy (what a freshly created block holds) and the
// capacity (what a block holds the moment before it splits), i.e. a
// block's expected occupancy if it spent its life uniformly between
// birth and split. It overestimates the solved value by roughly 10–40%
// across the PR family — coarse, but finite, positive, and monotone in
// capacity, which is what a degraded-mode planner statistic needs.
func (m *Model) OccupancyHeuristic() float64 {
	return (m.PostSplitOccupancy() + float64(m.Capacity)) / 2
}

// normalization returns the paper's scalar a(e) = Σᵢⱼ Tᵢⱼ eᵢ — the
// expected number of new nodes per insertion when the current
// distribution is e.
func (m *Model) normalization(e vecmat.Vec) float64 {
	return m.T.RowSums().Dot(e)
}

// Residual returns ‖e·T − a(e)·e‖∞ for a candidate distribution —
// how far e is from being a true fixed point. Tests and the experiment
// harness use it to certify solutions.
func (m *Model) Residual(e vecmat.Vec) float64 {
	a := m.normalization(e)
	et := m.T.VecMul(e)
	r := 0.0
	for i := range e {
		if v := math.Abs(et[i] - a*e[i]); v > r {
			r = v
		}
	}
	return r
}

// SimplePRExact returns the closed-form solution for the simple PR
// quadtree (capacity 1, fanout 4) derived analytically in Section III:
// ē = (1/2, 1/2). The transform matrix is T = [[0,1],[3,2]], so
// ē·T = (3/2, 3/2) = 3·ē and the normalization scalar is a = 3.
// It anchors the numerical solvers.
func SimplePRExact() Distribution {
	return Distribution{E: vecmat.Vec{0.5, 0.5}, A: 3}
}

func uniformVec(n int) vecmat.Vec {
	v := make(vecmat.Vec, n)
	for i := range v {
		v[i] = 1 / float64(n)
	}
	return v
}
