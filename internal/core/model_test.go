package core

import (
	"math"
	"testing"

	"popana/internal/solver"
	"popana/internal/vecmat"
)

func TestSimplePRTransformMatrix(t *testing.T) {
	// Section III derives t₀ = (0,1) and t₁ = (3,2) for the simple PR
	// quadtree.
	m, err := NewPointModel(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{0, 1}, {3, 2}}
	for r := 0; r < 2; r++ {
		for c := 0; c < 2; c++ {
			if got := m.T.At(r, c); math.Abs(got-want[r][c]) > 1e-12 {
				t.Errorf("T[%d][%d] = %v, want %v", r, c, got, want[r][c])
			}
		}
	}
}

func TestTransformMatrixPaperFormula(t *testing.T) {
	// T[m][i] = C(m+1,i)·3^(m+1-i)/(4^m−1) for the quadtree.
	for _, m := range []int{1, 2, 3, 5, 8} {
		model, err := NewPointModel(m, 4)
		if err != nil {
			t.Fatal(err)
		}
		denom := math.Pow(4, float64(m)) - 1
		for i := 0; i <= m; i++ {
			want := choose(m+1, i) * math.Pow(3, float64(m+1-i)) / denom
			if got := model.T.At(m, i); math.Abs(got-want)/want > 1e-12 {
				t.Errorf("m=%d: T[m][%d] = %v, want %v", m, i, got, want)
			}
		}
	}
}

func choose(n, k int) float64 {
	c := 1.0
	for i := 0; i < k; i++ {
		c = c * float64(n-i) / float64(i+1)
	}
	return c
}

func TestTransformRowSums(t *testing.T) {
	// Rows 0..m-1 sum to 1; row m sums to (F^(m+1)−1)/(F^m−1).
	for _, f := range []int{2, 4, 8} {
		for _, m := range []int{1, 2, 4, 8} {
			model, err := NewPointModel(m, f)
			if err != nil {
				t.Fatal(err)
			}
			sums := model.T.RowSums()
			for i := 0; i < m; i++ {
				if math.Abs(sums[i]-1) > 1e-12 {
					t.Errorf("F=%d m=%d: row %d sums to %v", f, m, i, sums[i])
				}
			}
			ff := float64(f)
			want := (math.Pow(ff, float64(m+1)) - 1) / (math.Pow(ff, float64(m)) - 1)
			if math.Abs(sums[m]-want)/want > 1e-12 {
				t.Errorf("F=%d m=%d: split row sums to %v, want %v", f, m, sums[m], want)
			}
		}
	}
}

func TestNewPointModelValidation(t *testing.T) {
	if _, err := NewPointModel(0, 4); err == nil {
		t.Error("capacity 0 accepted")
	}
	if _, err := NewPointModel(1, 1); err == nil {
		t.Error("fanout 1 accepted")
	}
}

// paperTable1 holds the theoretical expected distributions from Table 1.
var paperTable1 = map[int][]float64{
	1: {0.500, 0.500},
	2: {0.278, 0.418, 0.304},
	3: {0.165, 0.320, 0.305, 0.210},
	4: {0.102, 0.239, 0.276, 0.225, 0.158},
	5: {0.065, 0.179, 0.238, 0.220, 0.172, 0.126},
	6: {0.043, 0.132, 0.200, 0.207, 0.176, 0.137, 0.105},
	7: {0.028, 0.098, 0.165, 0.189, 0.173, 0.143, 0.114, 0.090},
	8: {0.019, 0.073, 0.135, 0.168, 0.166, 0.145, 0.119, 0.097, 0.078},
}

func TestSolveReproducesTable1Theory(t *testing.T) {
	for m, want := range paperTable1 {
		model, err := NewPointModel(m, 4)
		if err != nil {
			t.Fatal(err)
		}
		d, err := model.Solve()
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		for i, w := range want {
			// The paper reports three decimals; allow rounding slack.
			if math.Abs(d.E[i]-w) > 0.0015 {
				t.Errorf("m=%d: e[%d] = %.4f, paper says %.3f", m, i, d.E[i], w)
			}
		}
	}
}

// paperTable2Theory holds the theoretical occupancies from Table 2.
var paperTable2Theory = map[int]float64{
	1: 0.50, 2: 1.03, 3: 1.56, 4: 2.10, 5: 2.63, 6: 3.17, 7: 3.72, 8: 4.25,
}

func TestSolveReproducesTable2Theory(t *testing.T) {
	for m, want := range paperTable2Theory {
		model, _ := NewPointModel(m, 4)
		d, err := model.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if got := d.AverageOccupancy(); math.Abs(got-want) > 0.011 {
			t.Errorf("m=%d: occupancy %.3f, paper says %.2f", m, got, want)
		}
	}
}

func TestSolveMatchesExactAnchor(t *testing.T) {
	model, _ := NewPointModel(1, 4)
	d, err := model.Solve()
	if err != nil {
		t.Fatal(err)
	}
	exact := SimplePRExact()
	for i := range exact.E {
		if math.Abs(d.E[i]-exact.E[i]) > 1e-12 {
			t.Errorf("e[%d] = %v, exact %v", i, d.E[i], exact.E[i])
		}
	}
	if math.Abs(d.A-exact.A) > 1e-10 {
		t.Errorf("a = %v, exact %v", d.A, exact.A)
	}
}

func TestSolveAgreesWithNewton(t *testing.T) {
	for _, f := range []int{2, 4, 8} {
		for m := 1; m <= 8; m++ {
			model, _ := NewPointModel(m, f)
			fp, err := model.Solve()
			if err != nil {
				t.Fatalf("F=%d m=%d fixed point: %v", f, m, err)
			}
			nw, err := model.SolveNewton(solver.Options{Tolerance: 1e-13})
			if err != nil {
				t.Fatalf("F=%d m=%d newton: %v", f, m, err)
			}
			for i := range fp.E {
				if math.Abs(fp.E[i]-nw.E[i]) > 1e-10 {
					t.Errorf("F=%d m=%d: solvers disagree at %d: %v vs %v", f, m, i, fp.E[i], nw.E[i])
				}
			}
		}
	}
}

func TestSolutionIsFixedPoint(t *testing.T) {
	for _, f := range []int{2, 3, 4, 8, 16} {
		for _, m := range []int{1, 2, 5, 10, 20} {
			model, err := NewPointModel(m, f)
			if err != nil {
				t.Fatal(err)
			}
			d, err := model.Solve()
			if err != nil {
				t.Fatalf("F=%d m=%d: %v", f, m, err)
			}
			if err := d.Validate(); err != nil {
				t.Errorf("F=%d m=%d: %v", f, m, err)
			}
			if r := model.Residual(d.E); r > 1e-10 {
				t.Errorf("F=%d m=%d: residual %v", f, m, r)
			}
		}
	}
}

func TestHigherFanoutRaisesUtilization(t *testing.T) {
	// Bigger fanout splits are more wasteful per split but rarer; the
	// model should still show occupancy increasing with capacity for
	// every fanout, and the normalization a decreasing toward 1.
	for _, f := range []int{2, 4, 8} {
		prev := 0.0
		prevA := math.Inf(1)
		for m := 1; m <= 8; m++ {
			model, _ := NewPointModel(m, f)
			d, err := model.Solve()
			if err != nil {
				t.Fatal(err)
			}
			if occ := d.AverageOccupancy(); occ <= prev {
				t.Errorf("F=%d: occupancy not increasing at m=%d (%v <= %v)", f, m, occ, prev)
			} else {
				prev = occ
			}
			if d.A >= prevA {
				t.Errorf("F=%d: normalization a not decreasing at m=%d", f, m)
			}
			prevA = d.A
		}
	}
}

func TestPostSplitOccupancy(t *testing.T) {
	// Section IV: t_m·(0..m) normalized per block is 0.40 for m=1.
	model, _ := NewPointModel(1, 4)
	if got := model.PostSplitOccupancy(); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("post-split occupancy %v, want 0.40", got)
	}
}

func TestDistributionMetrics(t *testing.T) {
	d := Distribution{E: vecmat.Vec{0.25, 0.5, 0.25}, A: 1.5}
	if got := d.AverageOccupancy(); got != 1.0 {
		t.Errorf("AverageOccupancy = %v", got)
	}
	if got := d.Utilization(2); got != 0.5 {
		t.Errorf("Utilization = %v", got)
	}
	if got := d.NodesPerItem(); got != 1.0 {
		t.Errorf("NodesPerItem = %v", got)
	}
	if got := d.EmptyFraction(); got != 0.25 {
		t.Errorf("EmptyFraction = %v", got)
	}
	if got := d.FullFraction(); got != 0.25 {
		t.Errorf("FullFraction = %v", got)
	}
}

func TestValidateCatchesBadDistributions(t *testing.T) {
	cases := []Distribution{
		{E: vecmat.Vec{0.5, 0.6}, A: 2},        // sum > 1
		{E: vecmat.Vec{1.0, 0.0}, A: 2},        // zero component
		{E: vecmat.Vec{1.5, -0.5}, A: 2},       // negative component
		{E: vecmat.Vec{0.5, 0.5}, A: 0.5},      // a <= 1
		{E: vecmat.Vec{math.NaN(), 0.5}, A: 2}, // NaN
	}
	for i, d := range cases {
		if err := d.Validate(); err == nil {
			t.Errorf("case %d validated", i)
		}
	}
}

func TestUtilizationPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Distribution{E: vecmat.Vec{1}}.Utilization(0)
}

func TestNodesPerItemEmptyDistribution(t *testing.T) {
	d := Distribution{E: vecmat.Vec{1}} // all mass on occupancy 0
	if !math.IsInf(d.NodesPerItem(), 1) {
		t.Error("NodesPerItem of empty-only distribution not +Inf")
	}
}

func TestLargeCapacityStability(t *testing.T) {
	// The solver must stay stable well beyond the paper's m=8. The
	// spectral gap narrows with m, so give the iteration more room and
	// a realistic tolerance.
	model, err := NewPointModel(64, 4)
	if err != nil {
		t.Fatal(err)
	}
	d, err := model.SolveOpts(solver.Options{Tolerance: 1e-12, MaxIterations: 200000})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Utilization should approach the extendible-hashing ln 2 regime
	// from below for large m... empirically the quadtree model sits
	// near 0.53 at m=8 and drifts slowly; just require sanity bounds.
	u := d.Utilization(64)
	if u < 0.3 || u > 1 {
		t.Errorf("utilization %v out of sane range", u)
	}
}
