package core

import (
	"fmt"

	"popana/internal/fmath"
	"popana/internal/vecmat"
)

// Sensitivity analysis. The line model's one free parameter is the
// quadrant-crossing probability p, which experiments estimate from
// simulated trees (E8). The derivative of the model's predictions with
// respect to p prices that estimation error: a measurement error Δp
// moves the predicted occupancy by ≈ OccupancySensitivity·Δp. The same
// machinery applies to any scalar parameterization of a model family.

// SensitivityResult reports the first-order response of a model family
// to its scalar parameter.
type SensitivityResult struct {
	// Occupancy and its derivative with respect to the parameter.
	Occupancy  float64
	DOccupancy float64
	// DE[i] is the derivative of the expected-distribution component i.
	DE vecmat.Vec
	// Parameter is the value the derivatives were taken at.
	Parameter float64
}

// LineModelSensitivity computes the line model's sensitivity to the
// crossing probability p at the given threshold and fanout, by central
// finite differences with step h (zero selects 1e-5).
func LineModelSensitivity(threshold, fanout int, p, h float64) (SensitivityResult, error) {
	if fmath.Zero(h) {
		h = 1e-5
	}
	if p-h <= 0 || p+h >= 1 {
		return SensitivityResult{}, fmt.Errorf("core: sensitivity step %g leaves (0,1) at p=%g", h, p)
	}
	solveAt := func(pp float64) (Distribution, error) {
		m, err := NewLineModel(threshold, fanout, LineModelOptions{CrossProb: pp})
		if err != nil {
			return Distribution{}, err
		}
		return m.Solve()
	}
	center, err := solveAt(p)
	if err != nil {
		return SensitivityResult{}, err
	}
	lo, err := solveAt(p - h)
	if err != nil {
		return SensitivityResult{}, err
	}
	hi, err := solveAt(p + h)
	if err != nil {
		return SensitivityResult{}, err
	}
	de := make(vecmat.Vec, len(center.E))
	for i := range de {
		de[i] = (hi.E[i] - lo.E[i]) / (2 * h)
	}
	return SensitivityResult{
		Occupancy:  center.AverageOccupancy(),
		DOccupancy: (hi.AverageOccupancy() - lo.AverageOccupancy()) / (2 * h),
		DE:         de,
		Parameter:  p,
	}, nil
}

// RelativeError returns the relative occupancy error a parameter
// mismeasurement dp induces, to first order.
func (s SensitivityResult) RelativeError(dp float64) float64 {
	if fmath.Zero(s.Occupancy) {
		return 0
	}
	return s.DOccupancy * dp / s.Occupancy
}

// CapacityLadder returns the model-predicted occupancy for every
// capacity in [1, maxCapacity] at a fixed fanout — the discrete
// "derivative" a designer actually tunes. (The continuous sensitivities
// above complement it for the continuous parameter.)
func CapacityLadder(fanout, maxCapacity int) ([]float64, error) {
	out := make([]float64, 0, maxCapacity)
	for m := 1; m <= maxCapacity; m++ {
		model, err := NewPointModel(m, fanout)
		if err != nil {
			return nil, err
		}
		d, err := model.Solve()
		if err != nil {
			return nil, err
		}
		out = append(out, d.AverageOccupancy())
	}
	return out, nil
}
