package core

import (
	"math"
	"testing"

	"popana/internal/solver"
	"popana/internal/vecmat"
)

func TestSolveWeightedUnitWeightsReducesToBase(t *testing.T) {
	for _, m := range []int{1, 3, 8} {
		model, _ := NewPointModel(m, 4)
		base, err := model.Solve()
		if err != nil {
			t.Fatal(err)
		}
		ones := make(vecmat.Vec, m+1)
		for i := range ones {
			ones[i] = 1
		}
		w, err := model.SolveWeighted(ones, solver.Options{})
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		for i := range base.E {
			if math.Abs(base.E[i]-w.E[i]) > 1e-9 {
				t.Errorf("m=%d: unit-weighted differs at %d: %v vs %v", m, i, base.E[i], w.E[i])
			}
		}
	}
}

func TestSolveWeightedAgingDirection(t *testing.T) {
	// Section IV's qualitative prediction: if high-occupancy nodes are
	// bigger (weights increasing in occupancy), the stationary fraction
	// of high-occupancy nodes — and hence the average occupancy — must
	// drop below the base model.
	model, _ := NewPointModel(4, 4)
	base, err := model.Solve()
	if err != nil {
		t.Fatal(err)
	}
	weights := vecmat.Vec{0.8, 0.9, 1.0, 1.15, 1.3} // larger blocks run fuller
	corrected, err := model.SolveWeighted(weights, solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if corrected.AverageOccupancy() >= base.AverageOccupancy() {
		t.Errorf("aging correction raised occupancy: %v >= %v",
			corrected.AverageOccupancy(), base.AverageOccupancy())
	}
	// And the reverse weighting must raise it.
	inv := vecmat.Vec{1.3, 1.15, 1.0, 0.9, 0.8}
	anti, err := model.SolveWeighted(inv, solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if anti.AverageOccupancy() <= base.AverageOccupancy() {
		t.Errorf("anti-aging weighting lowered occupancy: %v <= %v",
			anti.AverageOccupancy(), base.AverageOccupancy())
	}
}

func TestSolveWeightedResidual(t *testing.T) {
	model, _ := NewPointModel(5, 4)
	weights := vecmat.Vec{0.9, 0.95, 1, 1.05, 1.1, 1.2}
	d, err := model.SolveWeighted(weights, solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r := model.WeightedResidual(d.E, weights); r > 1e-9 {
		t.Errorf("weighted residual %v", r)
	}
	if err := d.Validate(); err != nil {
		t.Error(err)
	}
}

func TestSolveWeightedValidation(t *testing.T) {
	model, _ := NewPointModel(2, 4)
	if _, err := model.SolveWeighted(vecmat.Vec{1, 1}, solver.Options{}); err == nil {
		t.Error("wrong-length weights accepted")
	}
	if _, err := model.SolveWeighted(vecmat.Vec{1, 0, 1}, solver.Options{}); err == nil {
		t.Error("zero weight accepted")
	}
	if _, err := model.SolveWeighted(vecmat.Vec{1, -1, 1}, solver.Options{}); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestSolveWeightedScaleInvariance(t *testing.T) {
	// Only weight ratios matter.
	model, _ := NewPointModel(3, 4)
	w1 := vecmat.Vec{0.9, 1, 1.1, 1.2}
	w2 := w1.Scale(7)
	d1, err := model.SolveWeighted(w1, solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := model.SolveWeighted(w2, solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range d1.E {
		if math.Abs(d1.E[i]-d2.E[i]) > 1e-9 {
			t.Errorf("scaled weights changed solution at %d", i)
		}
	}
}
