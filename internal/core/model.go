// Package core implements population analysis, the primary contribution
// of Nelson & Samet, "A Population Analysis for Hierarchical Data
// Structures" (SIGMOD 1987).
//
// A bucketing hierarchical structure (PR quadtree, bintree, octree, PMR
// quadtree, ...) is modeled as a set of populations, one per node
// occupancy. Inserting one datum transforms a node of occupancy i into
// the mix of nodes described by row i of a transform matrix T: for
// unsaturated nodes the row simply shifts occupancy i to i+1; for a full
// node the row is the expected occupancy profile of the blocks created by
// splitting. The expected distribution ē of node occupancies is the
// distribution that is stationary under insertion:
//
//	ē·T = a·ē,   a = Σᵢ ēᵢ·(row-sum of T row i),  Σᵢ ēᵢ = 1, ēᵢ > 0.
//
// The paper treats this as a system of quadratic equations and solves it
// with a convergent iteration. This implementation additionally observes
// that the system is precisely the Perron–Frobenius left-eigenproblem of
// the non-negative matrix T: a is the spectral radius and ē the unique
// positive left eigenvector, which is why the paper's iteration — power
// iteration with L1 normalization — always converges and why "at most one
// positive solution is possible" ([Nels86b]).
package core

import (
	"fmt"
	"math"

	"popana/internal/binom"
	"popana/internal/fmath"
	"popana/internal/vecmat"
)

// Model is a population model of a bucketing hierarchical data structure:
// node types 0..Types-1 (usually occupancies) and the transform matrix
// describing the average result of one insertion into each type.
type Model struct {
	// T is the transform matrix. Row i gives the expected number of
	// nodes of each type produced when a datum is inserted into a node
	// of type i (the transformed node itself is consumed).
	T *vecmat.Mat
	// Capacity is the node capacity m (maximum occupancy before a
	// split). For point models, Types == Capacity+1.
	Capacity int
	// Fanout is the number of children a split produces (4 for
	// quadtrees, 2 for bintrees, 8 for octrees, 2^d in general).
	Fanout int
	// Desc describes the model for reports.
	Desc string
}

// Types returns the number of node types in the model.
func (m *Model) Types() int { return m.T.Rows }

// NewPointModel builds the generalized PR model of Section III for node
// capacity m ≥ 1 and fanout F ≥ 2.
//
// Rows 0..m-1 are occupancy shifts. Row m describes a split: m+1 items
// distributed independently and uniformly over F congruent blocks, with
// the recursive-split correction for the case that all m+1 items land in
// the same block,
//
//	T[m][i] = C(m+1, i) · (F−1)^(m+1−i) / (F^m − 1),  i = 0..m,
//
// which reduces to the paper's 3^(m+1−i)/(4^m−1) expression at F = 4.
// The row sum is (F^(m+1)−1)/(F^m−1), slightly more than F: a split
// produces F blocks, plus the occasional recursive cascade.
func NewPointModel(capacity, fanout int) (*Model, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("core: node capacity %d < 1", capacity)
	}
	if fanout < 2 {
		return nil, fmt.Errorf("core: fanout %d < 2", fanout)
	}
	n := capacity + 1
	t := vecmat.NewMat(n, n)
	for i := 0; i < capacity; i++ {
		t.Set(i, i+1, 1)
	}
	// Split row: expected children with occupancy i, corrected for the
	// probability F^(1-capacity-1)... i.e. P_{m+1} = F^{-m} of recursing.
	pAll := math.Pow(float64(fanout), -float64(capacity))
	inv := 1 / (1 - pAll)
	for i := 0; i <= capacity; i++ {
		t.Set(capacity, i, binom.ExpectedBuckets(capacity+1, fanout, i)*inv)
	}
	return &Model{
		T:        t,
		Capacity: capacity,
		Fanout:   fanout,
		Desc:     fmt.Sprintf("PR point model (capacity %d, fanout %d)", capacity, fanout),
	}, nil
}

// SplitRow returns the transform vector t_m of the splitting row — the
// expected occupancy profile of the blocks created when a full node
// absorbs one more point.
func (m *Model) SplitRow() vecmat.Vec { return m.T.Row(m.T.Rows - 1) }

// PostSplitOccupancy returns the expected average occupancy of a
// population created entirely by splitting full nodes: the dot product
// t_m · (0, 1, ..., m) divided by the expected number of blocks produced.
// Table 3 of the paper shows experimental per-depth occupancies decaying
// toward this value (0.40 for m=1, F=4, in the paper's per-node-count
// normalization t_m·(0..m)/rowsum... the paper quotes the raw dot product
// scaled by 1/(number of blocks per split); see OccupancyByDepth docs).
func (m *Model) PostSplitOccupancy() float64 {
	row := m.SplitRow()
	occ := 0.0
	n := 0.0
	for i, v := range row {
		occ += float64(i) * v
		n += v
	}
	return occ / n
}

// Distribution is an expected distribution ē over node types, normalized
// to sum to one.
type Distribution struct {
	E vecmat.Vec // proportions by node type (occupancy)
	// A is the paper's normalization scalar a — the expected number of
	// nodes produced per insertion — equal to the Perron eigenvalue of T.
	A float64
	// Iterations and Residual report the solve diagnostics.
	Iterations int
	Residual   float64
}

// AverageOccupancy returns ē·(0, 1, ..., m): the model's expected number
// of data items per node (Table 2's "theoretical occupancy").
func (d Distribution) AverageOccupancy() float64 {
	s := 0.0
	for i, e := range d.E {
		s += float64(i) * e
	}
	return s
}

// Utilization returns average occupancy divided by capacity — the
// expected storage utilization of a bucket.
func (d Distribution) Utilization(capacity int) float64 {
	if capacity <= 0 {
		panic("core: Utilization with non-positive capacity")
	}
	return d.AverageOccupancy() / float64(capacity)
}

// NodesPerItem returns the expected number of nodes the structure holds
// per stored item (the reciprocal of average occupancy) — the storage
// cost metric a systems designer actually budgets with.
func (d Distribution) NodesPerItem() float64 {
	occ := d.AverageOccupancy()
	if fmath.Zero(occ) {
		return math.Inf(1)
	}
	return 1 / occ
}

// EmptyFraction returns ē₀, the expected proportion of empty nodes.
func (d Distribution) EmptyFraction() float64 { return d.E[0] }

// FullFraction returns ē_m, the expected proportion of full nodes.
func (d Distribution) FullFraction() float64 { return d.E[len(d.E)-1] }

// Validate checks the invariants every expected distribution must have:
// components positive, summing to one, with finite diagnostics. It
// returns a descriptive error on the first violation.
func (d Distribution) Validate() error {
	sum := 0.0
	for i, e := range d.E {
		if math.IsNaN(e) || math.IsInf(e, 0) {
			return fmt.Errorf("core: component %d is %v", i, e)
		}
		if e <= 0 {
			return fmt.Errorf("core: component %d = %g is not positive", i, e)
		}
		sum += e
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("core: distribution sums to %.12g, want 1", sum)
	}
	if d.A <= 1 {
		return fmt.Errorf("core: normalization a = %g must exceed 1", d.A)
	}
	return nil
}
