package core

import (
	"fmt"
	"math"

	"popana/internal/binom"
	"popana/internal/fmath"
	"popana/internal/geom"
	"popana/internal/vecmat"
	"popana/internal/xrand"
)

// The line model reconstructs the population analysis of the PMR
// quadtree from [Nels86a]/[Nels86b]. The original technical report
// (TR-1740) is not available, so the model below is rebuilt from the PMR
// splitting rule as this paper cites it — see DESIGN.md, "Substitutions".
//
// PMR splitting rule: a line segment is inserted into every leaf block it
// crosses. If the insertion raises a leaf's occupancy above the splitting
// threshold k, that leaf is split exactly once (never recursively), and
// its segments are re-distributed into the quadrants they cross. A block
// can therefore hold more than k segments; occupancy is unbounded in
// principle but the tail decays geometrically, so the model truncates it.

// LineModelOptions configures NewLineModel.
type LineModelOptions struct {
	// CrossProb is the probability that a segment stored in a block
	// crosses any one particular quadrant of that block. Zero selects
	// DefaultCrossProb (the random-chord value, estimated once by
	// deterministic Monte Carlo).
	CrossProb float64
	// MaxOccupancy is the truncation point of the occupancy state
	// space. Zero selects threshold+8, by which point the stationary
	// mass is far below 1e-6 for every threshold the paper's range
	// covers.
	MaxOccupancy int
}

// NewLineModel builds the PMR population model for the given splitting
// threshold k ≥ 1 and fanout F (4 for the planar PMR quadtree).
//
// Node types are occupancies 0..MaxOccupancy. Rows:
//
//   - i < k: the inserted segment just joins the block: type i → i+1.
//   - i ≥ k: the block, now holding i+1 segments, splits once into F
//     quadrants. Under the independence approximation each segment
//     crosses a given quadrant with probability p, so the expected
//     number of children with occupancy j is F·C(i+1,j)·p^j·(1−p)^(i+1−j).
//     No recursive-split correction applies: PMR splits exactly once.
//
// The truncation folds the (tiny) probability of children above
// MaxOccupancy into the top state so the transform matrix stays
// conservative (row sums are exact).
func NewLineModel(threshold, fanout int, opts LineModelOptions) (*Model, error) {
	if threshold < 1 {
		return nil, fmt.Errorf("core: PMR threshold %d < 1", threshold)
	}
	if fanout < 2 {
		return nil, fmt.Errorf("core: fanout %d < 2", fanout)
	}
	p := opts.CrossProb
	if fmath.Zero(p) {
		p = DefaultCrossProb()
	}
	if p <= 0 || p >= 1 {
		return nil, fmt.Errorf("core: crossing probability %g outside (0,1)", p)
	}
	maxOcc := opts.MaxOccupancy
	if maxOcc == 0 {
		maxOcc = threshold + 8
	}
	if maxOcc <= threshold {
		return nil, fmt.Errorf("core: max occupancy %d must exceed threshold %d", maxOcc, threshold)
	}
	n := maxOcc + 1
	t := vecmat.NewMat(n, n)
	for i := 0; i < threshold; i++ {
		t.Set(i, i+1, 1)
	}
	for i := threshold; i <= maxOcc; i++ {
		// A block with i segments absorbs one more (i+1) and splits.
		segs := i + 1
		row := make(vecmat.Vec, n)
		for j := 0; j <= segs; j++ {
			exp := float64(fanout) * binom.PMF(segs, p, j)
			jj := j
			if jj > maxOcc {
				jj = maxOcc // fold truncated tail into the top state
			}
			row[jj] += exp
		}
		t.SetRow(i, row)
	}
	return &Model{
		T:        t,
		Capacity: threshold,
		Fanout:   fanout,
		Desc:     fmt.Sprintf("PMR line model (threshold %d, fanout %d, p=%.4f)", threshold, fanout, p),
	}, nil
}

var defaultCrossProb float64

// DefaultCrossProb returns the probability that a random chord of a
// square block crosses any one particular quadrant of the block, under
// the random-chord model of internal/dist (endpoints uniform on the
// boundary). The value is estimated once by Monte Carlo with a fixed
// seed, so it is deterministic across runs; EstimateCrossProb exposes the
// estimator for other segment models.
func DefaultCrossProb() float64 {
	if fmath.Zero(defaultCrossProb) {
		defaultCrossProb = EstimateCrossProb(xrand.New(0x9e3779b97f4a7c15), 200000)
	}
	return defaultCrossProb
}

// EstimateCrossProb estimates, for random chords of the unit square, the
// probability that a chord crosses one particular quadrant. By symmetry
// all four quadrants have the same probability, so the estimator averages
// the number of quadrants crossed and divides by four.
func EstimateCrossProb(rng *xrand.Rand, samples int) float64 {
	if samples <= 0 {
		panic("core: EstimateCrossProb needs samples > 0")
	}
	square := geom.UnitSquare
	quads := [4]geom.Rect{}
	for q := 0; q < 4; q++ {
		quads[q] = square.Quadrant(q)
	}
	total := 0
	for s := 0; s < samples; s++ {
		a := boundaryPoint(square, rng)
		b := boundaryPoint(square, rng)
		if a == b {
			s--
			continue
		}
		seg := geom.Segment{A: a, B: b}
		for q := 0; q < 4; q++ {
			if crossesInterior(seg, quads[q]) {
				total++
			}
		}
	}
	return float64(total) / float64(4*samples)
}

// crossesInterior reports whether seg's intersection with r has positive
// length (touching a corner or running along an edge only does not make
// the segment a tenant of the block).
func crossesInterior(seg geom.Segment, r geom.Rect) bool {
	clipped, ok := seg.ClipToRect(r)
	return ok && clipped.Length() > 1e-12
}

func boundaryPoint(r geom.Rect, rng *xrand.Rand) geom.Point {
	w, h := r.Width(), r.Height()
	t := rng.Float64() * 2 * (w + h)
	switch {
	case t < w:
		return geom.Point{X: r.MinX + t, Y: r.MinY}
	case t < w+h:
		return geom.Point{X: r.MaxX, Y: r.MinY + (t - w)}
	case t < 2*w+h:
		return geom.Point{X: r.MaxX - (t - w - h), Y: r.MaxY}
	default:
		return geom.Point{X: r.MinX, Y: r.MaxY - (t - 2*w - h)}
	}
}

// ExpectedQuadrantsCrossed returns F·p — the expected number of child
// blocks a stored segment lands in after a split, a quantity useful for
// sanity-checking a crossing probability against geometry (a straight
// chord of a square crosses between 1 and 3 of its quadrants).
func ExpectedQuadrantsCrossed(fanout int, crossProb float64) float64 {
	return float64(fanout) * crossProb
}

// TailMass returns the stationary probability mass at the truncation
// state of a line-model distribution — callers can verify the truncation
// point was generous enough.
func TailMass(d Distribution) float64 {
	if len(d.E) == 0 {
		return math.NaN()
	}
	return d.E[len(d.E)-1]
}
