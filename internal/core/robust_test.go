package core

import (
	"errors"
	"math"
	"testing"

	"popana/internal/solver"
)

// TestSolveRobustMatchesSolve: on well-behaved models the ladder must
// reproduce the paper's iteration to high accuracy, whichever rung wins.
func TestSolveRobustMatchesSolve(t *testing.T) {
	for capacity := 1; capacity <= 8; capacity++ {
		m, err := NewPointModel(capacity, 4)
		if err != nil {
			t.Fatal(err)
		}
		want, err := m.Solve()
		if err != nil {
			t.Fatal(err)
		}
		got, attempts, err := m.SolveRobust(solver.Options{})
		if err != nil {
			t.Fatalf("capacity %d: %v (attempts %+v)", capacity, err, attempts)
		}
		if len(attempts) == 0 {
			t.Fatalf("capacity %d: no attempts recorded", capacity)
		}
		if d := math.Abs(got.AverageOccupancy() - want.AverageOccupancy()); d > 1e-8 {
			t.Errorf("capacity %d: ladder occupancy %v, Solve %v (Δ=%g)",
				capacity, got.AverageOccupancy(), want.AverageOccupancy(), d)
		}
		if d := math.Abs(got.A - want.A); d > 1e-8 {
			t.Errorf("capacity %d: ladder a=%v, Solve a=%v", capacity, got.A, want.A)
		}
	}
}

// TestSolveLadderFallsThroughForcedNewtonFailure: with the Newton rung
// failed by the fault hook, the fixed-point rung still solves the model
// and the failure is recorded.
func TestSolveLadderFallsThroughForcedNewtonFailure(t *testing.T) {
	injected := errors.New("injected divergence")
	m, err := NewPointModel(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	d, attempts, err := m.SolveLadder(solver.LadderConfig{
		Fault: func(method string, _ float64) error {
			if method == "newton" {
				return injected
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(attempts) != 2 {
		t.Fatalf("attempts %+v", attempts)
	}
	if !errors.Is(attempts[0].Err, injected) {
		t.Fatalf("Newton failure not recorded: %+v", attempts[0])
	}
	if attempts[1].Method != "fixed-point" || attempts[1].Err != nil {
		t.Fatalf("fixed-point rung %+v", attempts[1])
	}
	want, _ := m.Solve()
	if diff := math.Abs(d.AverageOccupancy() - want.AverageOccupancy()); diff > 1e-8 {
		t.Errorf("fallback occupancy off by %g", diff)
	}
}

// TestSolveLadderExhaustedSurfacesSentinel: when every rung is failed
// the sentinel must propagate so callers can choose to degrade.
func TestSolveLadderExhaustedSurfacesSentinel(t *testing.T) {
	m, err := NewPointModel(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	_, attempts, err := m.SolveLadder(solver.LadderConfig{
		Fault: func(string, float64) error { return errors.New("forced") },
	})
	if !errors.Is(err, solver.ErrLadderExhausted) {
		t.Fatalf("err = %v", err)
	}
	if len(attempts) < 2 {
		t.Fatalf("attempts %+v", attempts)
	}
}

// TestOccupancyHeuristicTracksSolvedValue: the closed-form fallback must
// stay positive, below capacity+1, and within a factor of 2 of the true
// solved occupancy over a wide capacity range.
func TestOccupancyHeuristicTracksSolvedValue(t *testing.T) {
	for capacity := 1; capacity <= 16; capacity++ {
		m, err := NewPointModel(capacity, 4)
		if err != nil {
			t.Fatal(err)
		}
		h := m.OccupancyHeuristic()
		if h <= 0 || h > float64(capacity) {
			t.Fatalf("capacity %d: heuristic %v out of (0, capacity]", capacity, h)
		}
		d, err := m.Solve()
		if err != nil {
			t.Fatal(err)
		}
		ratio := h / d.AverageOccupancy()
		if ratio < 0.5 || ratio > 2 {
			t.Errorf("capacity %d: heuristic %v vs solved %v (ratio %v)",
				capacity, h, d.AverageOccupancy(), ratio)
		}
	}
}
