package core

import (
	"math"
	"testing"

	"popana/internal/vecmat"
)

func TestSpectrumSimplePR(t *testing.T) {
	// T = [[0,1],[3,2]] has eigenvalues 3 and -1, so λ₁ = 3 (the
	// normalization a) and |λ₂| = 1, gap 1/3.
	m, _ := NewPointModel(1, 4)
	s, err := m.Spectrum(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Lambda1-3) > 1e-10 {
		t.Errorf("λ₁ = %v, want 3", s.Lambda1)
	}
	if math.Abs(s.Lambda2Abs-1) > 1e-6 {
		t.Errorf("|λ₂| = %v, want 1", s.Lambda2Abs)
	}
	if math.Abs(s.Gap-1.0/3) > 1e-6 {
		t.Errorf("gap = %v, want 1/3", s.Gap)
	}
}

func TestSpectrumLambda1MatchesSolve(t *testing.T) {
	for _, f := range []int{2, 4, 8} {
		for _, m := range []int{1, 3, 8} {
			model, _ := NewPointModel(m, f)
			d, err := model.Solve()
			if err != nil {
				t.Fatal(err)
			}
			s, err := model.Spectrum(0)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(s.Lambda1-d.A) > 1e-9 {
				t.Errorf("F=%d m=%d: λ₁ %v vs a %v", f, m, s.Lambda1, d.A)
			}
			if s.Gap < 0 || s.Gap >= 1.00001 {
				t.Errorf("F=%d m=%d: gap %v outside [0,1)", f, m, s.Gap)
			}
		}
	}
}

func TestSpectrumRightEigenvector(t *testing.T) {
	m, _ := NewPointModel(4, 4)
	s, err := m.Spectrum(0)
	if err != nil {
		t.Fatal(err)
	}
	// T·r = λ₁·r.
	tr := m.T.MulVec(s.Right)
	for i := range s.Right {
		if math.Abs(tr[i]-s.Lambda1*s.Right[i]) > 1e-8 {
			t.Fatalf("right eigenvector residual at %d: %v vs %v", i, tr[i], s.Lambda1*s.Right[i])
		}
	}
	// Biorthogonal scaling e·r = 1.
	if math.Abs(s.Left.Dot(s.Right)-1) > 1e-9 {
		t.Fatalf("e·r = %v", s.Left.Dot(s.Right))
	}
}

func TestSpectrumGapPredictsIteration(t *testing.T) {
	// The fixed-point solver's iteration count should scale like
	// log(tol)/log(gap); check the ordering across capacities: larger
	// m ⇒ smaller spectral gap distance from 1 ⇒ more iterations.
	var gaps []float64
	var iters []int
	for _, m := range []int{2, 4, 8} {
		model, _ := NewPointModel(m, 4)
		s, err := model.Spectrum(0)
		if err != nil {
			t.Fatal(err)
		}
		d, err := model.Solve()
		if err != nil {
			t.Fatal(err)
		}
		gaps = append(gaps, s.Gap)
		iters = append(iters, d.Iterations)
	}
	for i := 1; i < len(gaps); i++ {
		if gaps[i] <= gaps[i-1] {
			t.Errorf("gap not increasing with capacity: %v", gaps)
		}
		if iters[i] <= iters[i-1] {
			t.Errorf("iterations not increasing with capacity: %v", iters)
		}
	}
}

func TestMixingInsertions(t *testing.T) {
	s := Spectrum{Gap: math.Exp(-1)}
	if got := s.MixingInsertions(); math.Abs(got-1) > 1e-12 {
		t.Errorf("mixing = %v, want 1", got)
	}
	if got := (Spectrum{Gap: 0}).MixingInsertions(); got != 0 {
		t.Errorf("zero gap mixing %v", got)
	}
	if got := (Spectrum{Gap: 1}).MixingInsertions(); !math.IsInf(got, 1) {
		t.Errorf("unit gap mixing %v", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := geoMean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Errorf("geoMean = %v", got)
	}
	if !math.IsNaN(geoMean(nil)) {
		t.Error("empty geoMean not NaN")
	}
}

func TestSpectrumLineModel(t *testing.T) {
	m, err := NewLineModel(4, 4, LineModelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.Spectrum(0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Lambda1 <= 1 || s.Gap <= 0 || s.Gap >= 1 {
		t.Fatalf("line model spectrum %+v", s)
	}
	_ = vecmat.Vec{} // keep the import for clarity of the file's domain
}
