package core

import (
	"math"
	"testing"
)

func TestLineModelSensitivityPositive(t *testing.T) {
	// Occupancy increases with p (children keep more segments), so the
	// derivative must be positive and consistent with an explicit
	// larger-step difference.
	s, err := LineModelSensitivity(4, 4, 0.45, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.DOccupancy <= 0 {
		t.Fatalf("dOcc/dp = %v, want positive", s.DOccupancy)
	}
	// Compare against a coarse difference.
	mLo, _ := NewLineModel(4, 4, LineModelOptions{CrossProb: 0.40})
	mHi, _ := NewLineModel(4, 4, LineModelOptions{CrossProb: 0.50})
	dLo, err := mLo.Solve()
	if err != nil {
		t.Fatal(err)
	}
	dHi, err := mHi.Solve()
	if err != nil {
		t.Fatal(err)
	}
	coarse := (dHi.AverageOccupancy() - dLo.AverageOccupancy()) / 0.10
	if math.Abs(s.DOccupancy-coarse)/coarse > 0.10 {
		t.Errorf("fine derivative %v vs coarse %v", s.DOccupancy, coarse)
	}
}

func TestSensitivityDistributionDerivativesSumToZero(t *testing.T) {
	// Σᵢ eᵢ = 1 for all p, so Σᵢ deᵢ/dp = 0.
	s, err := LineModelSensitivity(3, 4, 0.45, 0)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, d := range s.DE {
		sum += d
	}
	if math.Abs(sum) > 1e-5 {
		t.Errorf("distribution derivatives sum to %v, want 0", sum)
	}
}

func TestSensitivityRelativeError(t *testing.T) {
	s, err := LineModelSensitivity(4, 4, 0.43, 0)
	if err != nil {
		t.Fatal(err)
	}
	// E8 measures p within about ±0.01; the induced occupancy error
	// must stay below ~6% for the experiment's conclusions to be
	// meaningful — this quantifies the methodology's robustness.
	if rel := math.Abs(s.RelativeError(0.01)); rel > 0.06 {
		t.Errorf("±0.01 in p induces %.1f%% occupancy error", 100*rel)
	}
	if (SensitivityResult{}).RelativeError(0.5) != 0 {
		t.Error("zero-occupancy relative error not 0")
	}
}

func TestSensitivityValidation(t *testing.T) {
	if _, err := LineModelSensitivity(4, 4, 0.000001, 1e-5); err == nil {
		t.Error("p at the boundary accepted")
	}
	if _, err := LineModelSensitivity(0, 4, 0.4, 0); err == nil {
		t.Error("threshold 0 accepted")
	}
}

func TestCapacityLadder(t *testing.T) {
	occ, err := CapacityLadder(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(occ) != 8 {
		t.Fatalf("ladder length %d", len(occ))
	}
	// Matches Table 2's theory column and is strictly increasing.
	want := []float64{0.50, 1.03, 1.56, 2.10, 2.63, 3.17, 3.72, 4.25}
	for i := range occ {
		if math.Abs(occ[i]-want[i]) > 0.011 {
			t.Errorf("ladder[%d] = %v, want %v", i, occ[i], want[i])
		}
		if i > 0 && occ[i] <= occ[i-1] {
			t.Errorf("ladder not increasing at %d", i)
		}
	}
	if _, err := CapacityLadder(1, 3); err == nil {
		t.Error("fanout 1 accepted")
	}
}
