package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"popana/internal/faultinject"
)

func openT(t *testing.T, dir string, opts Options) *Log {
	t.Helper()
	l, err := Open(filepath.Join(dir, "shard.wal"), opts)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func collect(t *testing.T, l *Log) (recs [][]byte, torn bool) {
	t.Helper()
	torn, err := l.Fold(func(p []byte) error {
		recs = append(recs, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return recs, torn
}

func TestAppendFoldRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{})
	want := [][]byte{[]byte("one"), {}, []byte("three-3"), bytes.Repeat([]byte{0xAB}, 4096)}
	for _, p := range want {
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if n := l.Records(); n != len(want) {
		t.Fatalf("Records = %d, want %d", n, len(want))
	}
	got, torn := collect(t, l)
	if torn {
		t.Fatal("clean log reported torn")
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: same records survive.
	l2 := openT(t, dir, Options{})
	defer l2.Close()
	got2, torn := collect(t, l2)
	if torn || len(got2) != len(want) {
		t.Fatalf("after reopen: %d records, torn=%v", len(got2), torn)
	}
}

func TestEmptyLog(t *testing.T) {
	l := openT(t, t.TempDir(), Options{})
	defer l.Close()
	recs, torn := collect(t, l)
	if len(recs) != 0 || torn || l.Records() != 0 {
		t.Fatalf("empty log: %d records, torn=%v", len(recs), torn)
	}
}

// tornVariants damages a valid two-record log in every torn-tail shape:
// partial header, short payload, and corrupt payload checksum.
func tornVariants(t *testing.T) map[string]func(path string, frameEnd int64) {
	t.Helper()
	return map[string]func(string, int64){
		"partial-header": func(path string, frameEnd int64) {
			if err := os.Truncate(path, frameEnd+3); err != nil {
				t.Fatal(err)
			}
		},
		"short-payload": func(path string, frameEnd int64) {
			if err := os.Truncate(path, frameEnd+headerSize+1); err != nil {
				t.Fatal(err)
			}
		},
		"bad-crc": func(path string, frameEnd int64) {
			f, err := os.OpenFile(path, os.O_RDWR, 0)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			if _, err := f.WriteAt([]byte{0xFF}, frameEnd+headerSize); err != nil {
				t.Fatal(err)
			}
		},
	}
}

func TestTornTailDiscardedAndTruncatedOnOpen(t *testing.T) {
	for name, damage := range tornVariants(t) {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			l := openT(t, dir, Options{})
			good := [][]byte{[]byte("alpha"), []byte("beta")}
			for _, p := range good {
				if err := l.Append(p); err != nil {
					t.Fatal(err)
				}
			}
			goodEnd := l.size
			if err := l.Append([]byte("doomed-record")); err != nil {
				t.Fatal(err)
			}
			l.Close()
			damage(l.Path(), goodEnd)

			l2 := openT(t, dir, Options{})
			defer l2.Close()
			recs, torn := collect(t, l2)
			if torn {
				t.Fatal("Open did not truncate the torn tail")
			}
			if len(recs) != len(good) {
				t.Fatalf("%d records survived, want %d", len(recs), len(good))
			}
			// The file itself was truncated back to the valid prefix, so a
			// post-recovery append is replayable.
			if err := l2.Append([]byte("after-recovery")); err != nil {
				t.Fatal(err)
			}
			recs, torn = collect(t, l2)
			if torn || len(recs) != len(good)+1 || string(recs[len(recs)-1]) != "after-recovery" {
				t.Fatalf("append after recovery not replayable: %d records, torn=%v", len(recs), torn)
			}
		})
	}
}

// TestTornFirstRecord: a log whose only record is torn must recover to
// empty, not error.
func TestTornFirstRecord(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{})
	if err := l.Append(bytes.Repeat([]byte("x"), 100)); err != nil {
		t.Fatal(err)
	}
	l.Close()
	if err := os.Truncate(l.Path(), 11); err != nil { // mid-payload
		t.Fatal(err)
	}
	l2 := openT(t, dir, Options{})
	defer l2.Close()
	recs, torn := collect(t, l2)
	if len(recs) != 0 || torn || l2.Records() != 0 {
		t.Fatalf("torn-first-record log: %d records, torn=%v", len(recs), torn)
	}
}

func TestInjectedTornWritePoisons(t *testing.T) {
	dir := t.TempDir()
	inj := faultinject.New(3)
	l := openT(t, dir, Options{Injector: inj})
	if err := l.Append([]byte("committed")); err != nil {
		t.Fatal(err)
	}
	inj.EnableN(faultinject.WALTornWrite, 1.0, 1)
	err := l.Append([]byte("torn-by-injection"))
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("injected append error = %v", err)
	}
	// The log is poisoned: later appends fail without touching the file.
	if err := l.Append([]byte("after-poison")); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("append after poison = %v, want ErrPoisoned", err)
	}
	l.Close()

	// Crash-and-recover: only the committed record survives, and the
	// partial frame the injection wrote is gone.
	l2 := openT(t, dir, Options{})
	defer l2.Close()
	recs, torn := collect(t, l2)
	if torn || len(recs) != 1 || string(recs[0]) != "committed" {
		t.Fatalf("recovered %d records (torn=%v), want just the committed one", len(recs), torn)
	}
}

func TestTruncateRestartsEmptyAndUnpoisons(t *testing.T) {
	dir := t.TempDir()
	inj := faultinject.New(9)
	l := openT(t, dir, Options{Injector: inj})
	for i := 0; i < 5; i++ {
		if err := l.Append([]byte(fmt.Sprintf("r%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	inj.EnableN(faultinject.WALTornWrite, 1.0, 1)
	if err := l.Append([]byte("torn")); err == nil {
		t.Fatal("injected append did not fail")
	}
	if err := l.Truncate(); err != nil {
		t.Fatal(err)
	}
	if l.Records() != 0 {
		t.Fatalf("Records after Truncate = %d", l.Records())
	}
	// Truncate removed the unknown tail, so the log is usable again.
	if err := l.Append([]byte("fresh")); err != nil {
		t.Fatal(err)
	}
	recs, torn := collect(t, l)
	if torn || len(recs) != 1 || string(recs[0]) != "fresh" {
		t.Fatalf("after truncate+append: %d records, torn=%v", len(recs), torn)
	}
	l.Close()
}

func TestClosedLogErrors(t *testing.T) {
	l := openT(t, t.TempDir(), Options{})
	l.Close()
	if err := l.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append on closed = %v", err)
	}
	if _, err := l.Fold(nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Fold on closed = %v", err)
	}
	if err := l.Truncate(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Truncate on closed = %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double Close = %v", err)
	}
}
