// Package wal is a minimal, crash-safe write-ahead log: an append-only
// file of length-prefixed, CRC32-framed records. It knows nothing about
// what the records mean — callers hand it opaque payloads — so the same
// log serves every shard of a spatialdb table and stays independently
// testable.
//
// # Frame format
//
//	offset  size  field
//	0       4     payload length n (uint32, little-endian)
//	4       4     CRC-32C (Castagnoli) of the payload
//	8       n     payload
//
// # Crash contract
//
// A record is durable once Append returns and the covering Sync (or an
// O_SYNC-free OS page cache that survives the crash — the process-crash
// model every chaos test in this repository uses) has happened. A crash
// mid-append leaves a torn frame: a truncated header, a short payload,
// or a payload whose checksum does not match. Replay stops at the first
// torn frame and reports it; everything before it is intact by
// induction (frames are written in one contiguous slice, in order).
//
// Open truncates the file back to the end of the last valid frame, so
// appends after a recovery can never land behind unreachable garbage —
// a record appended after a torn tail would otherwise be silently lost
// by every future replay.
//
// A failed append — an injected torn write, a full disk, a closed file —
// poisons the log: the file's tail is now unknown, which is exactly the
// state a crash leaves, so every later Append returns ErrPoisoned and
// the owner is expected to treat the table as crashed and recover. This
// mirrors what real engines do: after a write error the only safe WAL
// is a re-opened one.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"popana/internal/faultinject"
)

// ErrPoisoned is returned by Append after an earlier append failed: the
// log tail is in an unknown state and the owner must recover by
// reopening.
var ErrPoisoned = errors.New("wal: log poisoned by earlier append failure")

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

// headerSize is the frame header: uint32 length + uint32 CRC.
const headerSize = 8

// castagnoli is the CRC-32C polynomial table; Castagnoli detects the
// short-burst errors torn sector writes produce better than IEEE and is
// hardware-accelerated on every platform this repo targets.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Log is one append-only record log backed by a single file. Append,
// Truncate, and Sync are safe for concurrent use; Replay and Fold read
// with an independent cursor and never disturb the append offset.
type Log struct {
	mu       sync.Mutex
	f        *os.File
	path     string
	size     int64 // end of the last valid frame == append offset
	records  int   // valid frames currently in the file
	poisoned bool
	closed   bool
	inj      *faultinject.Injector
}

// Options parameterizes Open.
type Options struct {
	// Injector arms deterministic failure points (WALTornWrite); nil is
	// the production default and costs one pointer comparison.
	Injector *faultinject.Injector
}

// Open opens (creating if absent) the log at path, scans it for the end
// of the last valid frame, and truncates any torn tail so future
// appends extend the valid prefix. The number of surviving records is
// available via Records.
func Open(path string, opts Options) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	l := &Log{f: f, path: path, inj: opts.Injector}
	valid, n, _, err := scan(f, nil)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: scan %s: %w", path, err)
	}
	if fi, err := f.Stat(); err == nil && fi.Size() > valid {
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: truncate torn tail of %s: %w", path, err)
		}
	}
	l.size = valid
	l.records = n
	return l, nil
}

// scan reads frames from the start of r, calling visit (when non-nil)
// with each valid payload, and returns the offset just past the last
// valid frame, the number of valid frames, and whether a torn tail was
// found after them. The payload slice is reused between calls.
func scan(r io.ReaderAt, visit func([]byte) error) (valid int64, records int, torn bool, err error) {
	var hdr [headerSize]byte
	var buf []byte
	off := int64(0)
	for {
		if _, err := r.ReadAt(hdr[:], off); err != nil {
			if errors.Is(err, io.EOF) {
				// A partial header (or clean EOF) ends the valid prefix.
				n, _ := r.ReadAt(hdr[:1], off)
				return off, records, n > 0, nil
			}
			return 0, 0, false, err
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if cap(buf) < int(n) {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		if _, err := r.ReadAt(buf, off+headerSize); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return off, records, true, nil // short payload: torn
			}
			return 0, 0, false, err
		}
		if crc32.Checksum(buf, castagnoli) != want {
			return off, records, true, nil // damaged payload: torn
		}
		if visit != nil {
			if err := visit(buf); err != nil {
				return 0, 0, false, err
			}
		}
		off += headerSize + int64(n)
		records++
	}
}

// Append writes one record. On any failure — including an injected torn
// write, which deliberately leaves a partial frame behind — the log is
// poisoned and the caller must treat the table as crashed.
func (l *Log) Append(payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	switch {
	case l.closed:
		return ErrClosed
	case l.poisoned:
		return ErrPoisoned
	}
	frame := make([]byte, headerSize+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
	copy(frame[headerSize:], payload)
	if l.inj.Fire(faultinject.WALTornWrite) {
		// Simulate a crash mid-syscall: half the frame reaches the file,
		// then the machine dies. The partial frame stays on disk (replay
		// must discard it) and the log is unusable until reopened.
		l.f.WriteAt(frame[:len(frame)/2], l.size)
		l.poisoned = true
		return fmt.Errorf("wal: append: %w at %s", faultinject.ErrInjected, faultinject.WALTornWrite)
	}
	if _, err := l.f.WriteAt(frame, l.size); err != nil {
		l.poisoned = true
		return fmt.Errorf("wal: append: %w", err)
	}
	l.size += int64(len(frame))
	l.records++
	return nil
}

// Sync flushes the file to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.f.Sync()
}

// Truncate discards every record: the log restarts empty. Callers
// truncate only after the records are durably covered by a sealed run.
func (l *Log) Truncate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: truncate: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: truncate sync: %w", err)
	}
	l.size = 0
	l.records = 0
	l.poisoned = false // the unknown tail is gone
	return nil
}

// Records returns the number of valid records currently in the log.
func (l *Log) Records() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.records
}

// Fold replays every valid record from the start of the log through
// visit, without moving the append offset, and reports whether a torn
// tail follows the valid prefix. It reads the file with an independent
// cursor, so it is safe to call while the log is open for append (the
// caller serializes against concurrent Append by holding the owning
// shard's lock, as the flush path does).
func (l *Log) Fold(visit func(payload []byte) error) (torn bool, err error) {
	l.mu.Lock()
	f, closed := l.f, l.closed
	l.mu.Unlock()
	if closed {
		return false, ErrClosed
	}
	_, _, torn, err = scan(f, visit)
	return torn, err
}

// Close closes the underlying file. A poisoned or dirty log is closed
// as-is: recovery re-scans the file on the next Open.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	return l.f.Close()
}

// Path returns the file path the log was opened at.
func (l *Log) Path() string { return l.path }
