package wal_test

import (
	"fmt"
	"os"
	"path/filepath"

	"popana/internal/wal"
)

// ExampleOpen shows the write-ahead cycle: append records, sync, crash
// (here: just close), then reopen and replay the survivors with Fold.
func ExampleOpen() {
	dir, err := os.MkdirTemp("", "wal-example")
	if err != nil {
		fmt.Println(err)
		return
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "shard-0.wal")

	log, err := wal.Open(path, wal.Options{})
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, op := range []string{"insert a", "insert b", "delete a"} {
		if err := log.Append([]byte(op)); err != nil {
			fmt.Println(err)
			return
		}
	}
	if err := log.Sync(); err != nil {
		fmt.Println(err)
		return
	}
	log.Close() // the process dies here; the file survives

	// Recovery: reopen (truncating any torn tail) and replay.
	log, err = wal.Open(path, wal.Options{})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer log.Close()
	torn, err := log.Fold(func(payload []byte) error {
		fmt.Println(string(payload))
		return nil
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("records:", log.Records(), "torn tail:", torn)
	// Output:
	// insert a
	// insert b
	// delete a
	// records: 3 torn tail: false
}

// ExampleLog_Truncate shows the checkpoint pattern: once the log's
// records are durably covered elsewhere (a sealed run file), Truncate
// restarts the log empty so replay cost stays bounded.
func ExampleLog_Truncate() {
	dir, err := os.MkdirTemp("", "wal-example")
	if err != nil {
		fmt.Println(err)
		return
	}
	defer os.RemoveAll(dir)

	log, err := wal.Open(filepath.Join(dir, "shard-0.wal"), wal.Options{})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer log.Close()
	for i := 0; i < 4; i++ {
		if err := log.Append([]byte{byte(i)}); err != nil {
			fmt.Println(err)
			return
		}
	}
	fmt.Println("before checkpoint:", log.Records())

	// ... seal the 4 records into a run file, fsync it, then:
	if err := log.Truncate(); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("after checkpoint:", log.Records())
	// Output:
	// before checkpoint: 4
	// after checkpoint: 0
}
