// Package stats holds the measurement side of the reproduction: the
// occupancy census a hierarchical structure reports about itself, the
// aggregation of censuses over repeated trials (the paper averages ten
// trees per data point), and small descriptive-statistics helpers.
package stats

import "math"

// Mean returns the arithmetic mean of xs (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (NaN for fewer than
// two samples).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// RelativeSpread returns (max-min)/mean — the paper notes corresponding
// data points from different trees were "typically within about 10% of
// each other", which this quantifies.
func RelativeSpread(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs[1:] {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	m := Mean(xs)
	if m == 0 {
		return math.NaN()
	}
	return (hi - lo) / m
}
