package stats

import "math"

// Census is a snapshot of a hierarchical structure's node populations:
// how many leaf blocks exist at each occupancy and each depth. In the
// paper's terminology the leaves of occupancy i are the population n_i;
// all distribution vectors and occupancy averages derive from here.
type Census struct {
	Leaves   int // total leaf blocks
	Internal int // internal (non-leaf) nodes
	Items    int // stored data items (sum over leaves of occupancy)
	Height   int // maximum leaf depth (root = 0)

	// ByOccupancy[i] counts leaf blocks holding exactly i items.
	ByOccupancy []int
	// ByDepth[d] is the per-depth census (index = depth).
	ByDepth []DepthCensus
	// AreaByOccupancy[i] sums the relative block area (fraction of the
	// region) over leaves of occupancy i; used to quantify aging.
	AreaByOccupancy []float64
}

// DepthCensus summarizes the leaves at one depth.
type DepthCensus struct {
	Leaves      int
	Items       int
	ByOccupancy []int
	// Area is the total relative area of this depth's leaves — the
	// probability that a uniformly random point lands at this depth,
	// which prices point searches.
	Area float64
}

// AverageOccupancy returns items per leaf for the depth slice.
func (d DepthCensus) AverageOccupancy() float64 {
	if d.Leaves == 0 {
		return math.NaN()
	}
	return float64(d.Items) / float64(d.Leaves)
}

// CensusBuilder accumulates a Census during a tree walk.
type CensusBuilder struct {
	c Census
}

// AddLeaf records one leaf block at the given depth with the given
// occupancy and relative area.
func (b *CensusBuilder) AddLeaf(depth, occupancy int, relArea float64) {
	c := &b.c
	c.Leaves++
	c.Items += occupancy
	if depth > c.Height {
		c.Height = depth
	}
	growInts(&c.ByOccupancy, occupancy+1)
	c.ByOccupancy[occupancy]++
	growFloats(&c.AreaByOccupancy, occupancy+1)
	c.AreaByOccupancy[occupancy] += relArea
	for len(c.ByDepth) <= depth {
		c.ByDepth = append(c.ByDepth, DepthCensus{})
	}
	dc := &c.ByDepth[depth]
	dc.Leaves++
	dc.Items += occupancy
	dc.Area += relArea
	growInts(&dc.ByOccupancy, occupancy+1)
	dc.ByOccupancy[occupancy]++
}

// AddInternal records one internal node.
func (b *CensusBuilder) AddInternal(depth int) {
	b.c.Internal++
	if depth > b.c.Height {
		b.c.Height = depth
	}
}

// Census returns the accumulated census.
func (b *CensusBuilder) Census() Census { return b.c }

// Proportions returns the distribution of leaves over occupancies,
// padded or truncated to n components (the paper's state vector d̄ for a
// structure with capacity n-1). Leaves with occupancy beyond n-1 (depth
// truncation, PMR blocks) are folded into the last component.
func (c Census) Proportions(n int) []float64 {
	p := make([]float64, n)
	if c.Leaves == 0 {
		return p
	}
	for occ, cnt := range c.ByOccupancy {
		i := occ
		if i >= n {
			i = n - 1
		}
		p[i] += float64(cnt)
	}
	inv := 1 / float64(c.Leaves)
	for i := range p {
		p[i] *= inv
	}
	return p
}

// ExpectedSearchDepth returns the area-weighted mean leaf depth: the
// expected number of tree levels a point search for a uniformly random
// location descends — the structure's I/O cost metric. NaN for an empty
// census.
func (c Census) ExpectedSearchDepth() float64 {
	totalArea, weighted := 0.0, 0.0
	for d, dc := range c.ByDepth {
		totalArea += dc.Area
		weighted += float64(d) * dc.Area
	}
	if totalArea == 0 {
		return math.NaN()
	}
	return weighted / totalArea
}

// MeanLeafDepth returns the count-weighted mean leaf depth (each leaf
// counted once regardless of size). The gap between this and
// ExpectedSearchDepth is another face of aging: searches land in big
// shallow blocks more often than counting suggests.
func (c Census) MeanLeafDepth() float64 {
	if c.Leaves == 0 {
		return math.NaN()
	}
	weighted := 0.0
	for d, dc := range c.ByDepth {
		weighted += float64(d) * float64(dc.Leaves)
	}
	return weighted / float64(c.Leaves)
}

// AverageOccupancy returns items per leaf block — the quantity Tables 2,
// 4 and 5 report.
func (c Census) AverageOccupancy() float64 {
	if c.Leaves == 0 {
		return math.NaN()
	}
	return float64(c.Items) / float64(c.Leaves)
}

// MeanAreaByOccupancy returns, for each occupancy, the mean relative
// block area of leaves with that occupancy, normalized by the overall
// mean leaf area. Values above 1 mean blocks of that occupancy run
// larger than average — the aging signature of Section IV, and the
// insertion weights for core's SolveWeighted.
func (c Census) MeanAreaByOccupancy(n int) []float64 {
	w := make([]float64, n)
	if c.Leaves == 0 {
		return w
	}
	totalArea := 0.0
	for _, a := range c.AreaByOccupancy {
		totalArea += a
	}
	overallMean := totalArea / float64(c.Leaves)
	counts := make([]float64, n)
	areas := make([]float64, n)
	for occ, cnt := range c.ByOccupancy {
		i := occ
		if i >= n {
			i = n - 1
		}
		counts[i] += float64(cnt)
		if occ < len(c.AreaByOccupancy) {
			areas[i] += c.AreaByOccupancy[occ]
		}
	}
	for i := range w {
		if counts[i] > 0 && overallMean > 0 {
			w[i] = areas[i] / counts[i] / overallMean
		}
	}
	return w
}

// TrialSummary aggregates censuses from repeated trials of the same
// experiment, mirroring the paper's averaging of ten trees per
// configuration.
type TrialSummary struct {
	Trials int
	// MeanProportions is the trial-mean distribution over occupancies.
	MeanProportions []float64
	// MeanLeaves and MeanOccupancy are trial means of leaf count and
	// average occupancy.
	MeanLeaves    float64
	MeanOccupancy float64
	// OccupancySpread is the relative spread (max-min)/mean of the
	// per-trial average occupancy.
	OccupancySpread float64
	// MeanLeavesByDepth[d] and MeanItemsByDepth[d] are trial means of
	// the per-depth leaf and item counts (Table 3's columns).
	MeanLeavesByDepth []float64
	MeanItemsByDepth  []float64
	// MeanAreaWeights is the trial-mean of MeanAreaByOccupancy.
	MeanAreaWeights []float64
}

// Summarize aggregates the trials into a TrialSummary with distribution
// vectors of length n.
func Summarize(censuses []Census, n int) TrialSummary {
	s := TrialSummary{
		Trials:          len(censuses),
		MeanProportions: make([]float64, n),
		MeanAreaWeights: make([]float64, n),
	}
	if len(censuses) == 0 {
		return s
	}
	occs := make([]float64, 0, len(censuses))
	maxDepth := 0
	for _, c := range censuses {
		if len(c.ByDepth) > maxDepth {
			maxDepth = len(c.ByDepth)
		}
	}
	s.MeanLeavesByDepth = make([]float64, maxDepth)
	s.MeanItemsByDepth = make([]float64, maxDepth)
	for _, c := range censuses {
		p := c.Proportions(n)
		w := c.MeanAreaByOccupancy(n)
		for i := 0; i < n; i++ {
			s.MeanProportions[i] += p[i]
			s.MeanAreaWeights[i] += w[i]
		}
		s.MeanLeaves += float64(c.Leaves)
		occs = append(occs, c.AverageOccupancy())
		for d, dc := range c.ByDepth {
			s.MeanLeavesByDepth[d] += float64(dc.Leaves)
			s.MeanItemsByDepth[d] += float64(dc.Items)
		}
	}
	inv := 1 / float64(len(censuses))
	for i := 0; i < n; i++ {
		s.MeanProportions[i] *= inv
		s.MeanAreaWeights[i] *= inv
	}
	for d := range s.MeanLeavesByDepth {
		s.MeanLeavesByDepth[d] *= inv
		s.MeanItemsByDepth[d] *= inv
	}
	s.MeanLeaves *= inv
	s.MeanOccupancy = Mean(occs)
	s.OccupancySpread = RelativeSpread(occs)
	return s
}

func growInts(s *[]int, n int) {
	for len(*s) < n {
		*s = append(*s, 0)
	}
}

func growFloats(s *[]float64, n int) {
	for len(*s) < n {
		*s = append(*s, 0)
	}
}
