package stats

import (
	"math"
	"testing"
)

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean of empty input not NaN")
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance with n-1 denominator: Σ(x-5)² = 32, /7.
	want := 32.0 / 7.0
	if got := Variance(xs); math.Abs(got-want) > 1e-12 {
		t.Errorf("Variance = %v, want %v", got, want)
	}
	if got := StdDev(xs); math.Abs(got-math.Sqrt(want)) > 1e-12 {
		t.Errorf("StdDev = %v", got)
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Error("Variance of one sample not NaN")
	}
}

func TestRelativeSpread(t *testing.T) {
	if got := RelativeSpread([]float64{9, 10, 11}); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("RelativeSpread = %v", got)
	}
	if !math.IsNaN(RelativeSpread(nil)) {
		t.Error("empty spread not NaN")
	}
	if !math.IsNaN(RelativeSpread([]float64{0, 0})) {
		t.Error("zero-mean spread not NaN")
	}
}

func buildCensus(leafs ...[3]any) Census {
	// each entry: depth, occupancy, area
	var b CensusBuilder
	for _, l := range leafs {
		b.AddLeaf(l[0].(int), l[1].(int), l[2].(float64))
	}
	return b.Census()
}

func TestCensusBuilder(t *testing.T) {
	var b CensusBuilder
	b.AddInternal(0)
	b.AddLeaf(1, 0, 0.25)
	b.AddLeaf(1, 2, 0.25)
	b.AddLeaf(1, 2, 0.25)
	b.AddLeaf(2, 1, 0.125)
	c := b.Census()
	if c.Leaves != 4 || c.Internal != 1 || c.Items != 5 || c.Height != 2 {
		t.Fatalf("census %+v", c)
	}
	if c.ByOccupancy[0] != 1 || c.ByOccupancy[1] != 1 || c.ByOccupancy[2] != 2 {
		t.Fatalf("histogram %v", c.ByOccupancy)
	}
	if len(c.ByDepth) != 3 || c.ByDepth[1].Leaves != 3 || c.ByDepth[2].Items != 1 {
		t.Fatalf("by depth %+v", c.ByDepth)
	}
	if got := c.ByDepth[1].AverageOccupancy(); math.Abs(got-4.0/3) > 1e-12 {
		t.Fatalf("depth-1 occupancy %v", got)
	}
	if got := c.AverageOccupancy(); got != 1.25 {
		t.Fatalf("avg occupancy %v", got)
	}
}

func TestProportions(t *testing.T) {
	c := buildCensus([3]any{1, 0, 0.5}, [3]any{1, 1, 0.25}, [3]any{1, 1, 0.25})
	p := c.Proportions(2)
	if math.Abs(p[0]-1.0/3) > 1e-12 || math.Abs(p[1]-2.0/3) > 1e-12 {
		t.Fatalf("proportions %v", p)
	}
	// Overflow occupancies fold into the last component.
	c2 := buildCensus([3]any{1, 5, 0.5}, [3]any{1, 0, 0.5})
	p2 := c2.Proportions(3)
	if p2[2] != 0.5 || p2[0] != 0.5 {
		t.Fatalf("folded proportions %v", p2)
	}
	// Empty census: all zeros.
	var empty Census
	for _, v := range empty.Proportions(3) {
		if v != 0 {
			t.Fatal("empty census proportions nonzero")
		}
	}
}

func TestAverageOccupancyEmpty(t *testing.T) {
	var c Census
	if !math.IsNaN(c.AverageOccupancy()) {
		t.Error("empty census occupancy not NaN")
	}
	var dc DepthCensus
	if !math.IsNaN(dc.AverageOccupancy()) {
		t.Error("empty depth census occupancy not NaN")
	}
}

func TestMeanAreaByOccupancy(t *testing.T) {
	// Two leaves with occupancy 0 of area 0.1 each, one leaf with
	// occupancy 1 of area 0.8: mean areas 0.1 and 0.8; overall mean
	// (0.1+0.1+0.8)/3 = 1/3. Weights: 0.3 and 2.4.
	c := buildCensus([3]any{1, 0, 0.1}, [3]any{1, 0, 0.1}, [3]any{1, 1, 0.8})
	w := c.MeanAreaByOccupancy(2)
	if math.Abs(w[0]-0.3) > 1e-12 || math.Abs(w[1]-2.4) > 1e-12 {
		t.Fatalf("weights %v", w)
	}
	// Empty census yields zeros without panicking.
	var empty Census
	for _, v := range empty.MeanAreaByOccupancy(2) {
		if v != 0 {
			t.Fatal("empty census weights nonzero")
		}
	}
}

func TestSummarize(t *testing.T) {
	c1 := buildCensus([3]any{1, 0, 0.5}, [3]any{1, 1, 0.5})
	c2 := buildCensus([3]any{1, 1, 0.5}, [3]any{1, 1, 0.5})
	s := Summarize([]Census{c1, c2}, 2)
	if s.Trials != 2 {
		t.Fatalf("trials %d", s.Trials)
	}
	// Mean proportions: ((0.5,0.5) + (0,1))/2 = (0.25, 0.75).
	if math.Abs(s.MeanProportions[0]-0.25) > 1e-12 || math.Abs(s.MeanProportions[1]-0.75) > 1e-12 {
		t.Fatalf("mean proportions %v", s.MeanProportions)
	}
	if s.MeanLeaves != 2 {
		t.Fatalf("mean leaves %v", s.MeanLeaves)
	}
	// Occupancies 0.5 and 1.0: mean 0.75, spread (1-0.5)/0.75.
	if math.Abs(s.MeanOccupancy-0.75) > 1e-12 {
		t.Fatalf("mean occupancy %v", s.MeanOccupancy)
	}
	if math.Abs(s.OccupancySpread-0.5/0.75) > 1e-12 {
		t.Fatalf("spread %v", s.OccupancySpread)
	}
	if len(s.MeanLeavesByDepth) != 2 || s.MeanLeavesByDepth[1] != 2 {
		t.Fatalf("leaves by depth %v", s.MeanLeavesByDepth)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil, 3)
	if s.Trials != 0 || len(s.MeanProportions) != 3 {
		t.Fatalf("empty summary %+v", s)
	}
}

func TestSummarizeDifferentDepths(t *testing.T) {
	c1 := buildCensus([3]any{0, 1, 1.0})
	c2 := buildCensus([3]any{3, 1, 0.015625})
	s := Summarize([]Census{c1, c2}, 2)
	if len(s.MeanLeavesByDepth) != 4 {
		t.Fatalf("depth slices %d", len(s.MeanLeavesByDepth))
	}
	if s.MeanLeavesByDepth[0] != 0.5 || s.MeanLeavesByDepth[3] != 0.5 {
		t.Fatalf("by depth %v", s.MeanLeavesByDepth)
	}
}
