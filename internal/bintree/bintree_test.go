package bintree

import (
	"testing"

	"popana/internal/geom"
	"popana/internal/xrand"
)

func randomPoints(rng *xrand.Rand, n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64(), rng.Float64())
	}
	return pts
}

func TestInsertContains(t *testing.T) {
	tr := MustNew(Config{Capacity: 2})
	pts := randomPoints(xrand.New(1), 500)
	for _, p := range pts {
		replaced, err := tr.Insert(p)
		if err != nil {
			t.Fatal(err)
		}
		if replaced {
			t.Fatal("fresh point reported replaced")
		}
	}
	if tr.Len() != 500 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for _, p := range pts {
		if !tr.Contains(p) {
			t.Fatalf("lost %v", p)
		}
	}
	if tr.Contains(geom.Pt(0.123456, 0.654321)) {
		t.Fatal("contains absent point")
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(Config{Capacity: 0}); err == nil {
		t.Error("capacity 0 accepted")
	}
	if _, err := New(Config{Capacity: 1, Region: geom.R(0, 0, 0, 1)}); err == nil {
		t.Error("empty region accepted")
	}
	if _, err := New(Config{Capacity: 1, MaxDepth: -5}); err == nil {
		t.Error("negative max depth accepted")
	}
	tr := MustNew(Config{Capacity: 1})
	if _, err := tr.Insert(geom.Pt(1.2, 0.5)); err == nil {
		t.Error("out-of-region point accepted")
	}
}

func TestAlternatingAxes(t *testing.T) {
	// Two points separated only in x split once (axis x at depth 0);
	// two points separated only in y need two levels (y splits at odd
	// depth).
	tr := MustNew(Config{Capacity: 1})
	if _, err := tr.Insert(geom.Pt(0.2, 0.5)); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Insert(geom.Pt(0.8, 0.5)); err != nil {
		t.Fatal(err)
	}
	if h := tr.Census().Height; h != 1 {
		t.Fatalf("x-separated points at height %d, want 1", h)
	}
	tr2 := MustNew(Config{Capacity: 1})
	if _, err := tr2.Insert(geom.Pt(0.2, 0.2)); err != nil {
		t.Fatal(err)
	}
	if _, err := tr2.Insert(geom.Pt(0.2, 0.8)); err != nil {
		t.Fatal(err)
	}
	if h := tr2.Census().Height; h != 2 {
		t.Fatalf("y-separated points at height %d, want 2", h)
	}
}

func TestCapacityInvariant(t *testing.T) {
	for _, m := range []int{1, 2, 5} {
		tr := MustNew(Config{Capacity: m})
		rng := xrand.New(uint64(m) + 7)
		for i := 0; i < 1000; i++ {
			if _, err := tr.Insert(geom.Pt(rng.Float64(), rng.Float64())); err != nil {
				t.Fatal(err)
			}
		}
		c := tr.Census()
		if c.Items != 1000 {
			t.Fatalf("m=%d: items %d", m, c.Items)
		}
		for occ, cnt := range c.ByOccupancy {
			if occ > m && cnt > 0 && c.Height < tr.cfg.MaxDepth {
				t.Fatalf("m=%d: leaf with occupancy %d", m, occ)
			}
		}
		// Binary split arithmetic: leaves = internal + 1.
		if c.Leaves != c.Internal+1 {
			t.Fatalf("m=%d: leaves %d, internal %d", m, c.Leaves, c.Internal)
		}
	}
}

func TestReplace(t *testing.T) {
	tr := MustNew(Config{Capacity: 1})
	p := geom.Pt(0.4, 0.6)
	if _, err := tr.Insert(p); err != nil {
		t.Fatal(err)
	}
	replaced, err := tr.Insert(p)
	if err != nil || !replaced {
		t.Fatalf("replace = %v, %v", replaced, err)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestMaxDepthTruncation(t *testing.T) {
	tr := MustNew(Config{Capacity: 1, MaxDepth: 4})
	for i := 0; i < 6; i++ {
		if _, err := tr.Insert(geom.Pt(0.001+float64(i)*1e-5, 0.001)); err != nil {
			t.Fatal(err)
		}
	}
	if h := tr.Census().Height; h > 4 {
		t.Fatalf("height %d > 4", h)
	}
	if tr.Len() != 6 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestCensusAreas(t *testing.T) {
	tr := MustNew(Config{Capacity: 1})
	if _, err := tr.Insert(geom.Pt(0.2, 0.5)); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Insert(geom.Pt(0.8, 0.5)); err != nil {
		t.Fatal(err)
	}
	c := tr.Census()
	total := 0.0
	for _, a := range c.AreaByOccupancy {
		total += a
	}
	if total < 0.999 || total > 1.001 {
		t.Fatalf("leaf areas sum to %v, want 1", total)
	}
}
