// Package bintree implements a 2D PR bintree [Same84c, Know80]: a
// regular hierarchical decomposition that halves a block along one axis
// per level, alternating x and y, with leaf capacity m. Its fanout is 2,
// so it is the second structure (after internal/hypertree with d=1) on
// which the fanout-2 population model is validated — but unlike the 1-D
// trie it stores genuinely planar data, demonstrating that the model's
// fanout parameter, not the data dimension, is what matters.
package bintree

import (
	"errors"
	"fmt"

	"popana/internal/geom"
	"popana/internal/stats"
)

// DefaultMaxDepth bounds decomposition when Config.MaxDepth is zero.
// A bintree needs two levels to halve both axes, so depths run about
// twice a quadtree's.
const DefaultMaxDepth = 96

// ErrOutOfRegion is returned when a point outside the region is inserted.
var ErrOutOfRegion = errors.New("bintree: point outside region")

// Config configures a tree.
type Config struct {
	// Capacity is the leaf capacity m >= 1.
	Capacity int
	// Region is the universe; the zero rectangle selects geom.UnitSquare.
	Region geom.Rect
	// MaxDepth truncates decomposition; zero selects DefaultMaxDepth.
	MaxDepth int
}

func (c Config) withDefaults() (Config, error) {
	if c.Capacity < 1 {
		return c, fmt.Errorf("bintree: capacity %d < 1", c.Capacity)
	}
	if c.Region == (geom.Rect{}) {
		c.Region = geom.UnitSquare
	}
	if c.Region.Empty() {
		return c, fmt.Errorf("bintree: empty region %v", c.Region)
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = DefaultMaxDepth
	}
	if c.MaxDepth < 1 {
		return c, fmt.Errorf("bintree: max depth %d < 1", c.MaxDepth)
	}
	return c, nil
}

// node is a bintree node; the two children share a single [2]node block
// so a split costs one allocation.
type node struct {
	children *[2]node // nil iff leaf; [0] is the lower half, [1] the upper
	pts      []geom.Point
}

func (n *node) leaf() bool { return n.children == nil }

// Tree is a PR bintree over a rectangle storing distinct points.
type Tree struct {
	cfg  Config
	root *node
	size int
}

// New returns an empty tree.
func New(cfg Config) (*Tree, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Tree{cfg: c, root: &node{}}, nil
}

// MustNew is New that panics on configuration errors.
func MustNew(cfg Config) *Tree {
	t, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Len returns the number of stored points.
func (t *Tree) Len() int { return t.size }

// Region returns the universe rectangle.
func (t *Tree) Region() geom.Rect { return t.cfg.Region }

// axisAt returns the split axis at a given depth: x (0) at even depths,
// y (1) at odd depths.
func axisAt(depth int) int { return depth & 1 }

// childOf returns which half of block (split along axis) contains p, and
// that half.
func childOf(block geom.Rect, axis int, p geom.Point) (int, geom.Rect) {
	lo, hi := block.Halves(axis)
	if axis == 0 {
		if p.X >= hi.MinX {
			return 1, hi
		}
		return 0, lo
	}
	if p.Y >= hi.MinY {
		return 1, hi
	}
	return 0, lo
}

// Insert stores p, returning whether an equal point was replaced.
func (t *Tree) Insert(p geom.Point) (replaced bool, err error) {
	if !t.cfg.Region.Contains(p) {
		return false, fmt.Errorf("%w: %v not in %v", ErrOutOfRegion, p, t.cfg.Region)
	}
	n, block, depth := t.root, t.cfg.Region, 0
	for !n.leaf() {
		var c int
		c, block = childOf(block, axisAt(depth), p)
		n = &n.children[c]
		depth++
	}
	for i := range n.pts {
		if n.pts[i] == p {
			return true, nil
		}
	}
	n.pts = append(n.pts, p)
	t.size++
	for len(n.pts) > t.cfg.Capacity && depth < t.cfg.MaxDepth {
		t.split(n, block, depth)
		var over *node
		if len(n.children[0].pts) > t.cfg.Capacity {
			over = &n.children[0]
			block, _ = block.Halves(axisAt(depth))
		} else if len(n.children[1].pts) > t.cfg.Capacity {
			over = &n.children[1]
			_, block = block.Halves(axisAt(depth))
		} else {
			break
		}
		n = over
		depth++
	}
	return false, nil
}

func (t *Tree) split(n *node, block geom.Rect, depth int) {
	n.children = new([2]node)
	axis := axisAt(depth)
	_, hi := block.Halves(axis)
	for _, p := range n.pts {
		upper := (axis == 0 && p.X >= hi.MinX) || (axis == 1 && p.Y >= hi.MinY)
		if upper {
			n.children[1].pts = append(n.children[1].pts, p)
		} else {
			n.children[0].pts = append(n.children[0].pts, p)
		}
	}
	n.pts = nil
}

// BulkLoad inserts a batch of points in one recursive partitioning pass
// and reports how many were new. The result is identical to inserting
// the points one at a time (regular decomposition: shape depends only on
// the point set). If any point lies outside the region, ErrOutOfRegion
// is returned and the tree is left unchanged.
func (t *Tree) BulkLoad(points []geom.Point) (added int, err error) {
	for _, p := range points {
		if !t.cfg.Region.Contains(p) {
			return 0, fmt.Errorf("%w: %v not in %v", ErrOutOfRegion, p, t.cfg.Region)
		}
	}
	if len(points) == 0 {
		return 0, nil
	}
	batch := make([]geom.Point, len(points))
	copy(batch, points)
	before := t.size
	t.bulkInsert(t.root, t.cfg.Region, 0, batch, make([]geom.Point, len(batch)))
	return t.size - before, nil
}

// bulkInsert routes batch into the subtree at n; scratch is a same-length
// buffer, the two swapping roles at each level (stable two-way partition).
func (t *Tree) bulkInsert(n *node, block geom.Rect, depth int, batch, scratch []geom.Point) {
	if len(batch) == 0 {
		return
	}
	if n.leaf() {
		if depth >= t.cfg.MaxDepth || len(n.pts)+len(batch) <= t.cfg.Capacity {
			// Fold into the leaf, skipping duplicates.
			for _, p := range batch {
				dup := false
				for i := range n.pts {
					if n.pts[i] == p {
						dup = true
						break
					}
				}
				if !dup {
					n.pts = append(n.pts, p)
					t.size++
				}
			}
			return
		}
		// The combined set may overflow: split now and route the batch
		// through the children. Duplicates could keep the distinct count
		// within capacity after all; the merge check below restores the
		// canonical shape in that case.
		t.split(n, block, depth)
	}
	axis := axisAt(depth)
	lo, hi := block.Halves(axis)
	k := 0
	for _, p := range batch {
		if (axis == 0 && p.X >= hi.MinX) || (axis == 1 && p.Y >= hi.MinY) {
			continue
		}
		scratch[k] = p
		k++
	}
	m := k
	for _, p := range batch {
		if (axis == 0 && p.X >= hi.MinX) || (axis == 1 && p.Y >= hi.MinY) {
			scratch[m] = p
			m++
		}
	}
	t.bulkInsert(&n.children[0], lo, depth+1, scratch[:k], batch[:k])
	t.bulkInsert(&n.children[1], hi, depth+1, scratch[k:m], batch[k:m])
	if len(n.children[0].pts)+len(n.children[1].pts) <= t.cfg.Capacity &&
		n.children[0].leaf() && n.children[1].leaf() {
		merged := append(n.children[0].pts, n.children[1].pts...)
		n.children = nil
		n.pts = merged
	}
}

// Contains reports whether p is stored.
func (t *Tree) Contains(p geom.Point) bool {
	if !t.cfg.Region.Contains(p) {
		return false
	}
	n, block, depth := t.root, t.cfg.Region, 0
	for !n.leaf() {
		var c int
		c, block = childOf(block, axisAt(depth), p)
		n = &n.children[c]
		depth++
	}
	for i := range n.pts {
		if n.pts[i] == p {
			return true
		}
	}
	return false
}

// Census returns the occupancy census of the tree's leaves.
func (t *Tree) Census() stats.Census {
	var b stats.CensusBuilder
	total := t.cfg.Region.Area()
	census(t.root, t.cfg.Region, 0, total, &b)
	return b.Census()
}

func census(n *node, block geom.Rect, depth int, total float64, b *stats.CensusBuilder) {
	if n.leaf() {
		b.AddLeaf(depth, len(n.pts), block.Area()/total)
		return
	}
	b.AddInternal(depth)
	lo, hi := block.Halves(axisAt(depth))
	census(&n.children[0], lo, depth+1, total, b)
	census(&n.children[1], hi, depth+1, total, b)
}
