// Package bintree implements a 2D PR bintree [Same84c, Know80]: a
// regular hierarchical decomposition that halves a block along one axis
// per level, alternating x and y, with leaf capacity m. Its fanout is 2,
// so it is the second structure (after internal/hypertree with d=1) on
// which the fanout-2 population model is validated — but unlike the 1-D
// trie it stores genuinely planar data, demonstrating that the model's
// fanout parameter, not the data dimension, is what matters.
package bintree

import (
	"errors"
	"fmt"

	"popana/internal/geom"
	"popana/internal/stats"
)

// DefaultMaxDepth bounds decomposition when Config.MaxDepth is zero.
// A bintree needs two levels to halve both axes, so depths run about
// twice a quadtree's.
const DefaultMaxDepth = 96

// ErrOutOfRegion is returned when a point outside the region is inserted.
var ErrOutOfRegion = errors.New("bintree: point outside region")

// Config configures a tree.
type Config struct {
	// Capacity is the leaf capacity m >= 1.
	Capacity int
	// Region is the universe; the zero rectangle selects geom.UnitSquare.
	Region geom.Rect
	// MaxDepth truncates decomposition; zero selects DefaultMaxDepth.
	MaxDepth int
}

func (c Config) withDefaults() (Config, error) {
	if c.Capacity < 1 {
		return c, fmt.Errorf("bintree: capacity %d < 1", c.Capacity)
	}
	if c.Region == (geom.Rect{}) {
		c.Region = geom.UnitSquare
	}
	if c.Region.Empty() {
		return c, fmt.Errorf("bintree: empty region %v", c.Region)
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = DefaultMaxDepth
	}
	if c.MaxDepth < 1 {
		return c, fmt.Errorf("bintree: max depth %d < 1", c.MaxDepth)
	}
	return c, nil
}

type node struct {
	lo, hi *node // nil iff leaf
	pts    []geom.Point
}

func (n *node) leaf() bool { return n.lo == nil }

// Tree is a PR bintree over a rectangle storing distinct points.
type Tree struct {
	cfg  Config
	root *node
	size int
}

// New returns an empty tree.
func New(cfg Config) (*Tree, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Tree{cfg: c, root: &node{}}, nil
}

// MustNew is New that panics on configuration errors.
func MustNew(cfg Config) *Tree {
	t, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Len returns the number of stored points.
func (t *Tree) Len() int { return t.size }

// Region returns the universe rectangle.
func (t *Tree) Region() geom.Rect { return t.cfg.Region }

// axisAt returns the split axis at a given depth: x (0) at even depths,
// y (1) at odd depths.
func axisAt(depth int) int { return depth & 1 }

// childOf returns which half of block (split along axis) contains p, and
// that half.
func childOf(block geom.Rect, axis int, p geom.Point) (int, geom.Rect) {
	lo, hi := block.Halves(axis)
	if axis == 0 {
		if p.X >= hi.MinX {
			return 1, hi
		}
		return 0, lo
	}
	if p.Y >= hi.MinY {
		return 1, hi
	}
	return 0, lo
}

// Insert stores p, returning whether an equal point was replaced.
func (t *Tree) Insert(p geom.Point) (replaced bool, err error) {
	if !t.cfg.Region.Contains(p) {
		return false, fmt.Errorf("%w: %v not in %v", ErrOutOfRegion, p, t.cfg.Region)
	}
	n, block, depth := t.root, t.cfg.Region, 0
	for !n.leaf() {
		var c int
		c, block = childOf(block, axisAt(depth), p)
		if c == 0 {
			n = n.lo
		} else {
			n = n.hi
		}
		depth++
	}
	for i := range n.pts {
		if n.pts[i] == p {
			return true, nil
		}
	}
	n.pts = append(n.pts, p)
	t.size++
	for len(n.pts) > t.cfg.Capacity && depth < t.cfg.MaxDepth {
		t.split(n, block, depth)
		var over *node
		if len(n.lo.pts) > t.cfg.Capacity {
			over = n.lo
			block, _ = block.Halves(axisAt(depth))
		} else if len(n.hi.pts) > t.cfg.Capacity {
			over = n.hi
			_, block = block.Halves(axisAt(depth))
		} else {
			break
		}
		n = over
		depth++
	}
	return false, nil
}

func (t *Tree) split(n *node, block geom.Rect, depth int) {
	n.lo, n.hi = &node{}, &node{}
	axis := axisAt(depth)
	_, hi := block.Halves(axis)
	for _, p := range n.pts {
		upper := (axis == 0 && p.X >= hi.MinX) || (axis == 1 && p.Y >= hi.MinY)
		if upper {
			n.hi.pts = append(n.hi.pts, p)
		} else {
			n.lo.pts = append(n.lo.pts, p)
		}
	}
	n.pts = nil
}

// Contains reports whether p is stored.
func (t *Tree) Contains(p geom.Point) bool {
	if !t.cfg.Region.Contains(p) {
		return false
	}
	n, block, depth := t.root, t.cfg.Region, 0
	for !n.leaf() {
		var c int
		c, block = childOf(block, axisAt(depth), p)
		if c == 0 {
			n = n.lo
		} else {
			n = n.hi
		}
		depth++
	}
	for i := range n.pts {
		if n.pts[i] == p {
			return true
		}
	}
	return false
}

// Census returns the occupancy census of the tree's leaves.
func (t *Tree) Census() stats.Census {
	var b stats.CensusBuilder
	total := t.cfg.Region.Area()
	census(t.root, t.cfg.Region, 0, total, &b)
	return b.Census()
}

func census(n *node, block geom.Rect, depth int, total float64, b *stats.CensusBuilder) {
	if n.leaf() {
		b.AddLeaf(depth, len(n.pts), block.Area()/total)
		return
	}
	b.AddInternal(depth)
	lo, hi := block.Halves(axisAt(depth))
	census(n.lo, lo, depth+1, total, b)
	census(n.hi, hi, depth+1, total, b)
}
