package bintree

import (
	"reflect"
	"testing"

	"popana/internal/geom"
	"popana/internal/xrand"
)

// TestBulkLoadMatchesSequentialInsert checks the batch loader produces
// the exact tree (census included) a loop of Inserts would.
func TestBulkLoadMatchesSequentialInsert(t *testing.T) {
	rng := xrand.New(42)
	for _, n := range []int{0, 1, 5, 100, 2000} {
		cfg := Config{Capacity: 4}
		points := make([]geom.Point, n)
		for i := range points {
			points[i] = geom.Pt(rng.Float64(), rng.Float64())
		}
		if n >= 100 {
			points = append(points, points[:25]...) // duplicates
		}
		seq := MustNew(cfg)
		for _, p := range points {
			if _, err := seq.Insert(p); err != nil {
				t.Fatal(err)
			}
		}
		bulk := MustNew(cfg)
		added, err := bulk.BulkLoad(points)
		if err != nil {
			t.Fatal(err)
		}
		if added != seq.Len() || bulk.Len() != seq.Len() {
			t.Fatalf("n=%d: bulk added %d / len %d, sequential len %d", n, added, bulk.Len(), seq.Len())
		}
		if !reflect.DeepEqual(seq.Census(), bulk.Census()) {
			t.Fatalf("n=%d: censuses differ:\nseq  %+v\nbulk %+v", n, seq.Census(), bulk.Census())
		}
		for _, p := range points {
			if !bulk.Contains(p) {
				t.Fatalf("n=%d: bulk tree lost %v", n, p)
			}
		}
	}
}

// TestBulkLoadRejectsOutOfRegion checks a bad batch leaves the tree
// unchanged.
func TestBulkLoadRejectsOutOfRegion(t *testing.T) {
	tr := MustNew(Config{Capacity: 2})
	if _, err := tr.BulkLoad([]geom.Point{{X: 0.5, Y: 0.5}, {X: -3, Y: 0}}); err == nil {
		t.Fatal("out-of-region point accepted")
	}
	if tr.Len() != 0 {
		t.Fatal("failed bulk load mutated the tree")
	}
}
