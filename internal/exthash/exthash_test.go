package exthash

import (
	"math"
	"testing"
	"testing/quick"

	"popana/internal/xrand"
)

func TestPutGet(t *testing.T) {
	tab := MustNew(Config{BucketCapacity: 2})
	rng := xrand.New(1)
	keys := make([]uint64, 2000)
	for i := range keys {
		keys[i] = rng.Uint64()
		replaced, err := tab.Put(keys[i], i)
		if err != nil {
			t.Fatal(err)
		}
		if replaced {
			t.Fatalf("fresh key %d reported replaced", keys[i])
		}
	}
	if err := tab.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 2000 {
		t.Fatalf("Len = %d", tab.Len())
	}
	for i, k := range keys {
		v, ok := tab.Get(k)
		if !ok || v != i {
			t.Fatalf("Get(%d) = %v, %v", k, v, ok)
		}
	}
	if _, ok := tab.Get(0xdeadbeefdeadbeef); ok {
		t.Fatal("found absent key (astronomically unlikely)")
	}
}

func TestPutReplace(t *testing.T) {
	tab := MustNew(Config{BucketCapacity: 4})
	if _, err := tab.Put(42, "a"); err != nil {
		t.Fatal(err)
	}
	replaced, err := tab.Put(42, "b")
	if err != nil || !replaced {
		t.Fatalf("replace = %v, %v", replaced, err)
	}
	if tab.Len() != 1 {
		t.Fatalf("Len = %d", tab.Len())
	}
	if v, _ := tab.Get(42); v != "b" {
		t.Fatalf("value %v", v)
	}
}

func TestDirectoryDoubling(t *testing.T) {
	tab := MustNew(Config{BucketCapacity: 1, Hash: Identity})
	// Keys with distinct top bits split cleanly.
	keys := []uint64{0x0 << 62, 0x1 << 62, 0x2 << 62, 0x3 << 62}
	for i, k := range keys {
		if _, err := tab.Put(k, i); err != nil {
			t.Fatal(err)
		}
	}
	if tab.GlobalDepth() != 2 || tab.DirectorySize() != 4 {
		t.Fatalf("global depth %d, directory %d", tab.GlobalDepth(), tab.DirectorySize())
	}
	if err := tab.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRepeatedSplitOnSharedPrefix(t *testing.T) {
	// Two keys sharing a long prefix force several doublings at once.
	tab := MustNew(Config{BucketCapacity: 1, Hash: Identity})
	a := uint64(0xF000000000000000)
	b := uint64(0xF100000000000000) // differs at bit 56 (8 levels deep)
	if _, err := tab.Put(a, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Put(b, 2); err != nil {
		t.Fatal(err)
	}
	if tab.GlobalDepth() < 8 {
		t.Fatalf("global depth %d, want >= 8", tab.GlobalDepth())
	}
	if err := tab.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if v, ok := tab.Get(a); !ok || v != 1 {
		t.Fatal("key a lost")
	}
	if v, ok := tab.Get(b); !ok || v != 2 {
		t.Fatal("key b lost")
	}
}

func TestDirectoryOverflow(t *testing.T) {
	tab := MustNew(Config{BucketCapacity: 1, MaxGlobalDepth: 4, Hash: Identity})
	// Keys identical in the top 4 bits but distinct below cannot be
	// separated within the depth bound.
	if _, err := tab.Put(0x8000000000000000, 1); err != nil {
		t.Fatal(err)
	}
	_, err := tab.Put(0x8000000000000001, 2)
	if err == nil {
		t.Fatal("overflow not reported")
	}
}

func TestDelete(t *testing.T) {
	tab := MustNew(Config{BucketCapacity: 2})
	rng := xrand.New(3)
	keys := make([]uint64, 500)
	for i := range keys {
		keys[i] = rng.Uint64()
		if _, err := tab.Put(keys[i], i); err != nil {
			t.Fatal(err)
		}
	}
	for i, k := range keys {
		if !tab.Delete(k) {
			t.Fatalf("Delete(%d) failed", k)
		}
		if _, ok := tab.Get(k); ok {
			t.Fatalf("key %d present after delete", k)
		}
		if i%100 == 0 {
			if err := tab.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if tab.Len() != 0 {
		t.Fatalf("Len = %d after deleting all", tab.Len())
	}
	// Full merge shrinks the directory back to one bucket.
	if tab.GlobalDepth() != 0 || tab.Buckets() != 1 {
		t.Fatalf("after deleting all: depth %d, buckets %d", tab.GlobalDepth(), tab.Buckets())
	}
}

func TestDeleteAbsent(t *testing.T) {
	tab := MustNew(Config{BucketCapacity: 2})
	if tab.Delete(123) {
		t.Fatal("deleted absent key")
	}
}

func TestChurnAgainstMap(t *testing.T) {
	tab := MustNew(Config{BucketCapacity: 3})
	rng := xrand.New(17)
	model := map[uint64]int{}
	var keys []uint64
	for op := 0; op < 20000; op++ {
		switch {
		case rng.Float64() < 0.55 || len(keys) == 0:
			k := uint64(rng.Intn(5000)) // small key space forces replacements
			_, had := model[k]
			replaced, err := tab.Put(k, op)
			if err != nil {
				t.Fatal(err)
			}
			if replaced != had {
				t.Fatalf("op %d: replaced=%v, model had=%v", op, replaced, had)
			}
			if !had {
				keys = append(keys, k)
			}
			model[k] = op
		default:
			i := rng.Intn(len(keys))
			k := keys[i]
			keys[i] = keys[len(keys)-1]
			keys = keys[:len(keys)-1]
			if !tab.Delete(k) {
				t.Fatalf("op %d: delete of live key failed", op)
			}
			delete(model, k)
		}
		if tab.Len() != len(model) {
			t.Fatalf("op %d: size %d, model %d", op, tab.Len(), len(model))
		}
	}
	if err := tab.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for k, v := range model {
		got, ok := tab.Get(k)
		if !ok || got != v {
			t.Fatalf("Get(%d) = %v, %v; want %d", k, got, ok, v)
		}
	}
}

func TestUtilizationNearLn2(t *testing.T) {
	// Fagin et al.: expected utilization tends to ln 2 ≈ 0.693.
	tab := MustNew(Config{BucketCapacity: 8})
	rng := xrand.New(29)
	for tab.Len() < 20000 {
		if _, err := tab.Put(rng.Uint64(), nil); err != nil {
			t.Fatal(err)
		}
	}
	u := tab.Utilization()
	if u < 0.6 || u > 0.78 {
		t.Fatalf("utilization %v, expected near ln 2", u)
	}
}

func TestCensus(t *testing.T) {
	tab := MustNew(Config{BucketCapacity: 4})
	rng := xrand.New(31)
	for tab.Len() < 1000 {
		if _, err := tab.Put(rng.Uint64(), nil); err != nil {
			t.Fatal(err)
		}
	}
	c := tab.Census()
	if c.Items != 1000 {
		t.Fatalf("census items %d", c.Items)
	}
	if c.Leaves != tab.Buckets() {
		t.Fatalf("census leaves %d, buckets %d", c.Leaves, tab.Buckets())
	}
	for occ, cnt := range c.ByOccupancy {
		if occ > 4 && cnt > 0 {
			t.Fatalf("bucket with occupancy %d > capacity", occ)
		}
	}
}

func TestWalk(t *testing.T) {
	tab := MustNew(Config{BucketCapacity: 2})
	for i := uint64(0); i < 100; i++ {
		if _, err := tab.Put(i, int(i)); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[uint64]bool{}
	tab.Walk(func(k uint64, v any) bool {
		seen[k] = true
		return true
	})
	if len(seen) != 100 {
		t.Fatalf("walk saw %d keys", len(seen))
	}
	n := 0
	if tab.Walk(func(uint64, any) bool { n++; return n < 5 }) {
		t.Fatal("early-stopped walk reported complete")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{BucketCapacity: 0}); err == nil {
		t.Error("capacity 0 accepted")
	}
	if _, err := New(Config{BucketCapacity: 1, MaxGlobalDepth: 63}); err == nil {
		t.Error("max depth 63 accepted")
	}
	if _, err := New(Config{BucketCapacity: 1, MaxGlobalDepth: -1}); err == nil {
		t.Error("negative max depth accepted")
	}
}

func TestMix64Avalanche(t *testing.T) {
	// Flipping one input bit flips roughly half the output bits.
	rng := xrand.New(37)
	f := func(x uint64, bitRaw uint8) bool {
		x = rng.Uint64()
		bit := uint(bitRaw % 64)
		a, b := Mix64(x), Mix64(x^(1<<bit))
		diff := a ^ b
		n := 0
		for i := 0; i < 64; i++ {
			if diff>>uint(i)&1 == 1 {
				n++
			}
		}
		return n >= 10 && n <= 54
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPhasingInUtilization(t *testing.T) {
	// Utilization oscillates in log n: sample at powers of two times
	// √2 and check the spread over a late window is non-trivial.
	tab := MustNew(Config{BucketCapacity: 8})
	rng := xrand.New(41)
	var utils []float64
	targets := []int{1024, 1448, 2048, 2896, 4096}
	for _, n := range targets {
		for tab.Len() < n {
			if _, err := tab.Put(rng.Uint64(), nil); err != nil {
				t.Fatal(err)
			}
		}
		utils = append(utils, tab.Utilization())
	}
	lo, hi := utils[0], utils[0]
	for _, u := range utils {
		lo = math.Min(lo, u)
		hi = math.Max(hi, u)
	}
	if hi-lo < 0.01 {
		t.Fatalf("no oscillation visible: %v", utils)
	}
}
