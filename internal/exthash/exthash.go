// Package exthash implements extendible hashing [Fagi79] — the structure
// whose statistical analysis the paper contrasts with population
// analysis. A directory of 2^g pointers (g = global depth) indexes
// buckets of capacity b; each bucket has a local depth l <= g and is
// shared by 2^(g-l) directory cells. An overflowing bucket splits on the
// next hash bit; a split of a bucket with l == g first doubles the
// directory.
//
// Fagin et al. showed the expected storage utilization tends to ln 2 ≈
// 0.693 with a non-damping oscillation in log n — exactly the phasing
// phenomenon of Section IV. Experiment E10 measures both here.
package exthash

import (
	"errors"
	"fmt"
	"math/bits"

	"popana/internal/stats"
)

// DefaultMaxGlobalDepth bounds directory doubling; 2^28 cells is beyond
// anything the experiments need and protects against adversarial keys.
const DefaultMaxGlobalDepth = 28

// ErrDirectoryOverflow is returned when a pathological key set would
// force the directory beyond MaxGlobalDepth.
var ErrDirectoryOverflow = errors.New("exthash: directory overflow (too many equal hash prefixes)")

// Config configures a table.
type Config struct {
	// BucketCapacity is the number of records a bucket holds, b >= 1.
	BucketCapacity int
	// MaxGlobalDepth bounds directory doubling; zero selects
	// DefaultMaxGlobalDepth.
	MaxGlobalDepth int
	// Hash maps a key to a 64-bit hash whose high bits index the
	// directory. Nil selects Mix64. Tests use Identity to steer keys
	// into chosen buckets.
	Hash func(k uint64) uint64
}

// Mix64 is a strong 64-bit mixer (SplitMix64 finalizer) suitable as the
// Config.Hash for integer keys.
func Mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Identity uses the key itself as its hash; useful in tests that want to
// force directory behavior, and for keys that are already uniform.
func Identity(x uint64) uint64 { return x }

type record struct {
	key  uint64
	hash uint64
	val  any
}

type bucket struct {
	localDepth int
	recs       []record
}

// Table is an extendible-hashing map from uint64 keys to values.
type Table struct {
	cfg  Config
	dir  []*bucket
	g    int // global depth; len(dir) == 1<<g
	size int
}

// New returns an empty table.
func New(cfg Config) (*Table, error) {
	if cfg.BucketCapacity < 1 {
		return nil, fmt.Errorf("exthash: bucket capacity %d < 1", cfg.BucketCapacity)
	}
	if cfg.MaxGlobalDepth == 0 {
		cfg.MaxGlobalDepth = DefaultMaxGlobalDepth
	}
	if cfg.MaxGlobalDepth < 1 || cfg.MaxGlobalDepth > 62 {
		return nil, fmt.Errorf("exthash: max global depth %d outside 1..62", cfg.MaxGlobalDepth)
	}
	if cfg.Hash == nil {
		cfg.Hash = Mix64
	}
	return &Table{cfg: cfg, dir: []*bucket{{localDepth: 0}}, g: 0}, nil
}

// MustNew is New that panics on configuration errors.
func MustNew(cfg Config) *Table {
	t, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Len returns the number of stored records.
func (t *Table) Len() int { return t.size }

// GlobalDepth returns the directory's depth g (directory size is 2^g).
func (t *Table) GlobalDepth() int { return t.g }

// DirectorySize returns the number of directory cells, 2^g.
func (t *Table) DirectorySize() int { return len(t.dir) }

// dirIndex extracts the g most significant hash bits, following Fagin's
// prefix scheme (so doubling appends one more bit of discrimination).
func (t *Table) dirIndex(h uint64) int {
	if t.g == 0 {
		return 0
	}
	return int(h >> (64 - uint(t.g)))
}

// Get returns the value stored under key.
func (t *Table) Get(key uint64) (any, bool) {
	h := t.cfg.Hash(key)
	b := t.dir[t.dirIndex(h)]
	for i := range b.recs {
		if b.recs[i].key == key {
			return b.recs[i].val, true
		}
	}
	return nil, false
}

// Put stores val under key, replacing any previous value.
func (t *Table) Put(key uint64, val any) (replaced bool, err error) {
	h := t.cfg.Hash(key)
	b := t.dir[t.dirIndex(h)]
	for i := range b.recs {
		if b.recs[i].key == key {
			b.recs[i].val = val
			return true, nil
		}
	}
	b.recs = append(b.recs, record{key: key, hash: h, val: val})
	t.size++
	// Split until the bucket holding our hash fits, doubling the
	// directory as needed. Repeated splits happen when every record
	// shares a longer hash prefix.
	for {
		b = t.dir[t.dirIndex(h)]
		if len(b.recs) <= t.cfg.BucketCapacity {
			return false, nil
		}
		if b.localDepth == t.g {
			if t.g >= t.cfg.MaxGlobalDepth {
				return false, fmt.Errorf("%w at global depth %d", ErrDirectoryOverflow, t.g)
			}
			t.doubleDirectory()
		}
		t.splitBucket(t.dirIndex(h))
	}
}

// doubleDirectory doubles the directory, making each bucket shared by
// twice as many cells.
func (t *Table) doubleDirectory() {
	nd := make([]*bucket, 2*len(t.dir))
	for i, b := range t.dir {
		nd[2*i], nd[2*i+1] = b, b
	}
	t.dir = nd
	t.g++
}

// splitBucket splits the bucket referenced by directory cell idx into
// two buckets of local depth l+1, redistributing records on hash bit
// g-l-1 (counting from the top).
func (t *Table) splitBucket(idx int) {
	old := t.dir[idx]
	l := old.localDepth
	lo := &bucket{localDepth: l + 1}
	hi := &bucket{localDepth: l + 1}
	// The distinguishing bit is the (l+1)-th most significant hash bit.
	bit := uint64(1) << (64 - uint(l) - 1)
	for _, r := range old.recs {
		if r.hash&bit != 0 {
			hi.recs = append(hi.recs, r)
		} else {
			lo.recs = append(lo.recs, r)
		}
	}
	// Rewire the 2^(g-l) contiguous cells that shared old: the first
	// half get lo, the second half hi.
	span := 1 << uint(t.g-l)
	start := idx &^ (span - 1)
	for i := 0; i < span; i++ {
		if i < span/2 {
			t.dir[start+i] = lo
		} else {
			t.dir[start+i] = hi
		}
	}
}

// Delete removes key, returning whether it was present. Buddy buckets
// whose combined records fit are merged and the directory halved when
// every pair of cells agrees — keeping utilization meaningful under
// shrinking workloads.
func (t *Table) Delete(key uint64) bool {
	h := t.cfg.Hash(key)
	idx := t.dirIndex(h)
	b := t.dir[idx]
	for i := range b.recs {
		if b.recs[i].key == key {
			last := len(b.recs) - 1
			b.recs[i] = b.recs[last]
			b.recs = b.recs[:last]
			t.size--
			t.maybeMerge(idx)
			return true
		}
	}
	return false
}

// maybeMerge merges the bucket at cell idx with its buddy while both are
// leaf-level splits whose union fits one bucket, then shrinks the
// directory if possible.
func (t *Table) maybeMerge(idx int) {
	for {
		b := t.dir[idx]
		if b.localDepth == 0 {
			break
		}
		span := 1 << uint(t.g-b.localDepth)
		start := idx &^ (2*span - 1) // the buddy pair's full range
		buddyStart := start + span
		var buddy *bucket
		if idx >= buddyStart {
			buddy = t.dir[start]
		} else {
			buddy = t.dir[buddyStart]
		}
		if buddy.localDepth != b.localDepth || len(b.recs)+len(buddy.recs) > t.cfg.BucketCapacity {
			break
		}
		merged := &bucket{localDepth: b.localDepth - 1, recs: append(append([]record{}, b.recs...), buddy.recs...)}
		for i := 0; i < 2*span; i++ {
			t.dir[start+i] = merged
		}
		idx = start
	}
	t.shrinkDirectory()
}

// shrinkDirectory halves the directory while every even/odd cell pair
// points at the same bucket.
func (t *Table) shrinkDirectory() {
	for t.g > 0 {
		can := true
		for i := 0; i < len(t.dir); i += 2 {
			if t.dir[i] != t.dir[i+1] {
				can = false
				break
			}
		}
		if !can {
			return
		}
		nd := make([]*bucket, len(t.dir)/2)
		for i := range nd {
			nd[i] = t.dir[2*i]
		}
		t.dir = nd
		t.g--
	}
}

// Walk calls fn for every stored record in an unspecified order;
// returning false stops the walk.
func (t *Table) Walk(fn func(key uint64, val any) bool) bool {
	seen := map[*bucket]bool{}
	for _, b := range t.dir {
		if seen[b] {
			continue
		}
		seen[b] = true
		for i := range b.recs {
			if !fn(b.recs[i].key, b.recs[i].val) {
				return false
			}
		}
	}
	return true
}

// Buckets returns the number of distinct buckets.
func (t *Table) Buckets() int {
	seen := map[*bucket]bool{}
	for _, b := range t.dir {
		seen[b] = true
	}
	return len(seen)
}

// Utilization returns stored records divided by total bucket capacity —
// the quantity whose expectation Fagin et al. proved tends to ln 2.
func (t *Table) Utilization() float64 {
	nb := t.Buckets()
	if nb == 0 {
		return 0
	}
	return float64(t.size) / float64(nb*t.cfg.BucketCapacity)
}

// Census returns the bucket-occupancy census. Depth is the bucket's
// local depth; relative "area" is the fraction of hash space the bucket
// covers, 2^(-localDepth) — the exact analogue of block area, making the
// aging machinery reusable for hashing.
func (t *Table) Census() stats.Census {
	var b stats.CensusBuilder
	seen := map[*bucket]bool{}
	for _, bk := range t.dir {
		if seen[bk] {
			continue
		}
		seen[bk] = true
		b.AddLeaf(bk.localDepth, len(bk.recs), pow2neg(bk.localDepth))
	}
	return b.Census()
}

func pow2neg(n int) float64 {
	if n < 0 {
		return 0
	}
	if n > 62 {
		n = 62
	}
	return 1 / float64(uint64(1)<<uint(n))
}

// CheckInvariants verifies the structural invariants of the table and
// returns the first violation: directory size 2^g; every bucket's local
// depth <= g; every bucket shared by exactly 2^(g-l) contiguous,
// properly aligned cells; every record hashed into the right bucket.
// Tests and failure-injection harnesses call this after every mutation
// batch.
func (t *Table) CheckInvariants() error {
	if len(t.dir) != 1<<uint(t.g) {
		return fmt.Errorf("exthash: directory size %d != 2^%d", len(t.dir), t.g)
	}
	if t.g > 0 && bits.OnesCount(uint(len(t.dir))) != 1 {
		return fmt.Errorf("exthash: directory size %d not a power of two", len(t.dir))
	}
	counts := map[*bucket]int{}
	first := map[*bucket]int{}
	for i, b := range t.dir {
		if _, ok := first[b]; !ok {
			first[b] = i
		}
		counts[b]++
	}
	total := 0
	// Walk buckets in directory order (not map order) so the first
	// violation reported is the same on every run.
	for i, b := range t.dir {
		if first[b] != i {
			continue // already checked at its first cell
		}
		c := counts[b]
		if b.localDepth > t.g {
			return fmt.Errorf("exthash: bucket local depth %d > global %d", b.localDepth, t.g)
		}
		want := 1 << uint(t.g-b.localDepth)
		if c != want {
			return fmt.Errorf("exthash: bucket at depth %d shared by %d cells, want %d", b.localDepth, c, want)
		}
		if first[b]%want != 0 {
			return fmt.Errorf("exthash: bucket cells start at %d, not aligned to %d", first[b], want)
		}
		for _, r := range b.recs {
			if t.dir[t.dirIndex(r.hash)] != b {
				return fmt.Errorf("exthash: record with hash %x misfiled", r.hash)
			}
		}
		total += len(b.recs)
	}
	if total != t.size {
		return fmt.Errorf("exthash: %d records stored but size is %d", total, t.size)
	}
	return nil
}
