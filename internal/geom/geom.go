// Package geom provides the planar geometry shared by every hierarchical
// structure in this repository: points, axis-aligned rectangles,
// quadrant decomposition, and line segments with rectangle clipping
// (needed by the PMR quadtree).
//
// Coordinates are float64 in an arbitrary unit square or rectangle; the
// trees never assume integer grids. Quadrant numbering follows the usual
// quadtree convention:
//
//	2 | 3        (y grows upward; bit 0 = east, bit 1 = north)
//	--+--
//	0 | 1
package geom

import (
	"fmt"
	"math"
)

// Point is a point in the plane.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{x, y} }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.6g, %.6g)", p.X, p.Y) }

// Dist2 returns the squared Euclidean distance between p and q.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Sqrt(p.Dist2(q)) }

// Rect is an axis-aligned rectangle, closed on its min edges and open on
// its max edges: a point p is inside iff MinX <= p.X < MaxX and
// MinY <= p.Y < MaxY. Half-openness makes quadrant decomposition a true
// partition, so a point on an internal boundary belongs to exactly one
// quadrant.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// UnitSquare is the canonical [0,1)×[0,1) region the paper's experiments
// use.
var UnitSquare = Rect{0, 0, 1, 1}

// R is shorthand for Rect{minX, minY, maxX, maxY}.
func R(minX, minY, maxX, maxY float64) Rect { return Rect{minX, minY, maxX, maxY} }

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%.6g,%.6g)x[%.6g,%.6g)", r.MinX, r.MaxX, r.MinY, r.MaxY)
}

// Width returns the horizontal extent.
func (r Rect) Width() float64 { return r.MaxX - r.MinX }

// Height returns the vertical extent.
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// Area returns the rectangle's area.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Center returns the rectangle's center point.
func (r Rect) Center() Point {
	return Point{r.MinX + r.Width()/2, r.MinY + r.Height()/2}
}

// Empty reports whether the rectangle encloses no area.
func (r Rect) Empty() bool { return r.MinX >= r.MaxX || r.MinY >= r.MaxY }

// Contains reports whether p lies in the half-open rectangle.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X < r.MaxX && p.Y >= r.MinY && p.Y < r.MaxY
}

// ContainsClosed reports whether p lies in the closure of r (all edges
// inclusive). Range queries use the closed test so callers are not
// surprised when points sit exactly on a query edge.
func (r Rect) ContainsClosed(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// Intersects reports whether r and s share any area.
func (r Rect) Intersects(s Rect) bool {
	return r.MinX < s.MaxX && s.MinX < r.MaxX && r.MinY < s.MaxY && s.MinY < r.MaxY
}

// ContainsRect reports whether s is entirely inside r.
func (r Rect) ContainsRect(s Rect) bool {
	return s.MinX >= r.MinX && s.MaxX <= r.MaxX && s.MinY >= r.MinY && s.MaxY <= r.MaxY
}

// OverlapsClosed reports whether the closure of query touches the
// half-open rectangle r. This is the single pruning predicate of every
// range traversal in the repository: it subsumes the open-intersection
// test (strict overlap implies touching), and the closed edges are what
// let a query whose edge coincides with a block boundary still reach
// points lying exactly on that boundary.
func (r Rect) OverlapsClosed(query Rect) bool {
	return r.MinX <= query.MaxX && query.MinX <= r.MaxX &&
		r.MinY <= query.MaxY && query.MinY <= r.MaxY
}

// Quadrant returns quadrant q of r (q in 0..3; bit 0 = east half,
// bit 1 = north half).
func (r Rect) Quadrant(q int) Rect {
	cx, cy := r.MinX+r.Width()/2, r.MinY+r.Height()/2
	out := r
	if q&1 == 0 {
		out.MaxX = cx
	} else {
		out.MinX = cx
	}
	if q&2 == 0 {
		out.MaxY = cy
	} else {
		out.MinY = cy
	}
	return out
}

// QuadrantOf returns the quadrant index (0..3) of p within r. The point
// need not be inside r; callers that care must check Contains first.
func (r Rect) QuadrantOf(p Point) int {
	cx, cy := r.MinX+r.Width()/2, r.MinY+r.Height()/2
	q := 0
	if p.X >= cx {
		q |= 1
	}
	if p.Y >= cy {
		q |= 2
	}
	return q
}

// CellOf returns the locational code of the level-level cell of r that
// contains p: level quadrant descents from the root, each appending one
// quadrant index (bit 0 = east, bit 1 = north) as a pair of Morton
// bits, most significant quadrant first. The codes enumerate the
// 4^level cells of r in Z order, matching both the quadtree's
// decomposition and the leaf order of a linearquad snapshot. Points
// outside r land in the nearest boundary cell (QuadrantOf does not
// range-check), so every finite point maps to a cell. level must be in
// [0, 31] for the code to fit a uint64.
func (r Rect) CellOf(p Point, level int) uint64 {
	var code uint64
	cell := r
	for i := 0; i < level; i++ {
		q := cell.QuadrantOf(p)
		code = code<<2 | uint64(q)
		cell = cell.Quadrant(q)
	}
	return code
}

// Cell inverts CellOf: it returns the level-level cell of r with the
// given locational code, consuming the code's bit pairs most
// significant first. The 4^level cells of one level tile r exactly
// (each half-open), so every point of r lies in exactly one cell.
func (r Rect) Cell(code uint64, level int) Rect {
	out := r
	for i := level - 1; i >= 0; i-- {
		out = out.Quadrant(int(code >> (2 * uint(i)) & 3))
	}
	return out
}

// Halves splits r in two along the given axis (0 = split vertically into
// west/east, 1 = split horizontally into south/north), as a bintree does.
func (r Rect) Halves(axis int) (lo, hi Rect) {
	lo, hi = r, r
	if axis == 0 {
		cx := r.MinX + r.Width()/2
		lo.MaxX, hi.MinX = cx, cx
	} else {
		cy := r.MinY + r.Height()/2
		lo.MaxY, hi.MinY = cy, cy
	}
	return lo, hi
}

// Segment is a line segment from A to B.
type Segment struct {
	A, B Point
}

// Seg is shorthand for Segment{a, b}.
func Seg(a, b Point) Segment { return Segment{a, b} }

// String implements fmt.Stringer.
func (s Segment) String() string { return fmt.Sprintf("%v-%v", s.A, s.B) }

// Length returns the segment's Euclidean length.
func (s Segment) Length() float64 { return s.A.Dist(s.B) }

// IntersectsRect reports whether the segment has a non-empty intersection
// with the closed rectangle r. It uses Liang–Barsky clipping, which also
// yields the clip parameters for ClipToRect.
func (s Segment) IntersectsRect(r Rect) bool {
	_, _, ok := s.clipParams(r)
	return ok
}

// ClipToRect returns the part of s inside the closed rectangle r, and
// whether any part lies inside.
func (s Segment) ClipToRect(r Rect) (Segment, bool) {
	t0, t1, ok := s.clipParams(r)
	if !ok {
		return Segment{}, false
	}
	dx, dy := s.B.X-s.A.X, s.B.Y-s.A.Y
	return Segment{
		A: Point{s.A.X + t0*dx, s.A.Y + t0*dy},
		B: Point{s.A.X + t1*dx, s.A.Y + t1*dy},
	}, true
}

// clipParams runs Liang–Barsky, returning the parameter interval of s
// inside r (treating r as closed) and whether it is non-empty.
func (s Segment) clipParams(r Rect) (t0, t1 float64, ok bool) {
	dx, dy := s.B.X-s.A.X, s.B.Y-s.A.Y
	t0, t1 = 0, 1
	clip := func(p, q float64) bool {
		if p == 0 {
			return q >= 0 // parallel: inside iff q >= 0
		}
		t := q / p
		if p < 0 {
			if t > t1 {
				return false
			}
			if t > t0 {
				t0 = t
			}
		} else {
			if t < t0 {
				return false
			}
			if t < t1 {
				t1 = t
			}
		}
		return true
	}
	if !clip(-dx, s.A.X-r.MinX) || !clip(dx, r.MaxX-s.A.X) ||
		!clip(-dy, s.A.Y-r.MinY) || !clip(dy, r.MaxY-s.A.Y) {
		return 0, 0, false
	}
	return t0, t1, true
}
