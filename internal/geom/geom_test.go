package geom

import (
	"math"
	"testing"
	"testing/quick"

	"popana/internal/xrand"
)

func TestPointDist(t *testing.T) {
	a, b := Pt(0, 0), Pt(3, 4)
	if d := a.Dist(b); d != 5 {
		t.Errorf("Dist = %v", d)
	}
	if d := a.Dist2(b); d != 25 {
		t.Errorf("Dist2 = %v", d)
	}
}

func TestRectBasics(t *testing.T) {
	r := R(0, 0, 2, 4)
	if r.Width() != 2 || r.Height() != 4 || r.Area() != 8 {
		t.Errorf("dims wrong: %v", r)
	}
	if c := r.Center(); c != Pt(1, 2) {
		t.Errorf("Center = %v", c)
	}
	if r.Empty() {
		t.Error("non-empty rect reported empty")
	}
	if !R(1, 1, 1, 2).Empty() {
		t.Error("zero-width rect not empty")
	}
}

func TestRectContainsHalfOpen(t *testing.T) {
	r := R(0, 0, 1, 1)
	cases := []struct {
		p    Point
		want bool
	}{
		{Pt(0, 0), true},       // min corner inside
		{Pt(1, 1), false},      // max corner outside
		{Pt(1, 0), false},      // max-x edge outside
		{Pt(0, 1), false},      // max-y edge outside
		{Pt(0.5, 0.5), true},   // interior
		{Pt(-0.1, 0.5), false}, // west of r
	}
	for _, c := range cases {
		if got := r.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	// Closed variant includes max edges.
	if !r.ContainsClosed(Pt(1, 1)) {
		t.Error("ContainsClosed excludes max corner")
	}
}

func TestQuadrantsPartition(t *testing.T) {
	// Every point of the parent belongs to exactly one quadrant, and
	// QuadrantOf agrees with Quadrant geometry.
	rng := xrand.New(5)
	r := R(0, 0, 1, 1)
	for i := 0; i < 10000; i++ {
		p := Pt(rng.Float64(), rng.Float64())
		count := 0
		for q := 0; q < 4; q++ {
			if r.Quadrant(q).Contains(p) {
				count++
				if r.QuadrantOf(p) != q {
					t.Fatalf("QuadrantOf(%v) = %d but point is in quadrant %d", p, r.QuadrantOf(p), q)
				}
			}
		}
		if count != 1 {
			t.Fatalf("point %v in %d quadrants", p, count)
		}
	}
}

func TestQuadrantOnCenterlines(t *testing.T) {
	r := R(0, 0, 1, 1)
	// Points exactly on the center lines belong to the upper/right
	// quadrants (half-open convention).
	if q := r.QuadrantOf(Pt(0.5, 0.25)); q != 1 {
		t.Errorf("center-x point in quadrant %d, want 1", q)
	}
	if q := r.QuadrantOf(Pt(0.25, 0.5)); q != 2 {
		t.Errorf("center-y point in quadrant %d, want 2", q)
	}
	if q := r.QuadrantOf(Pt(0.5, 0.5)); q != 3 {
		t.Errorf("center point in quadrant %d, want 3", q)
	}
}

func TestQuadrantAreas(t *testing.T) {
	r := R(0, 0, 2, 2)
	for q := 0; q < 4; q++ {
		if a := r.Quadrant(q).Area(); a != 1 {
			t.Errorf("quadrant %d area %v", q, a)
		}
	}
}

func TestHalves(t *testing.T) {
	r := R(0, 0, 2, 2)
	lo, hi := r.Halves(0)
	if lo != R(0, 0, 1, 2) || hi != R(1, 0, 2, 2) {
		t.Errorf("x halves: %v %v", lo, hi)
	}
	lo, hi = r.Halves(1)
	if lo != R(0, 0, 2, 1) || hi != R(0, 1, 2, 2) {
		t.Errorf("y halves: %v %v", lo, hi)
	}
}

func TestIntersects(t *testing.T) {
	a := R(0, 0, 1, 1)
	if !a.Intersects(R(0.5, 0.5, 2, 2)) {
		t.Error("overlapping rects do not intersect")
	}
	if a.Intersects(R(1, 0, 2, 1)) {
		t.Error("edge-touching half-open rects intersect")
	}
	if a.Intersects(R(2, 2, 3, 3)) {
		t.Error("disjoint rects intersect")
	}
}

func TestContainsRect(t *testing.T) {
	if !R(0, 0, 2, 2).ContainsRect(R(0.5, 0.5, 1, 1)) {
		t.Error("inner rect not contained")
	}
	if R(0, 0, 2, 2).ContainsRect(R(1, 1, 3, 3)) {
		t.Error("overflowing rect contained")
	}
}

func TestSegmentLength(t *testing.T) {
	if l := Seg(Pt(0, 0), Pt(3, 4)).Length(); l != 5 {
		t.Errorf("Length = %v", l)
	}
}

func TestClipInsideSegment(t *testing.T) {
	r := R(0, 0, 1, 1)
	s := Seg(Pt(0.2, 0.2), Pt(0.8, 0.8))
	c, ok := s.ClipToRect(r)
	if !ok || c != s {
		t.Fatalf("interior segment clipped to %v, ok=%v", c, ok)
	}
}

func TestClipCrossingSegment(t *testing.T) {
	r := R(0, 0, 1, 1)
	s := Seg(Pt(-1, 0.5), Pt(2, 0.5))
	c, ok := s.ClipToRect(r)
	if !ok {
		t.Fatal("crossing segment not clipped")
	}
	if math.Abs(c.A.X-0) > 1e-12 || math.Abs(c.B.X-1) > 1e-12 || c.A.Y != 0.5 {
		t.Fatalf("clip = %v", c)
	}
}

func TestClipMissingSegment(t *testing.T) {
	r := R(0, 0, 1, 1)
	if _, ok := Seg(Pt(2, 2), Pt(3, 3)).ClipToRect(r); ok {
		t.Fatal("disjoint segment clipped")
	}
	if Seg(Pt(2, 2), Pt(3, 3)).IntersectsRect(r) {
		t.Fatal("disjoint segment intersects")
	}
}

func TestClipDiagonalCorner(t *testing.T) {
	// Segment cutting a corner.
	r := R(0, 0, 1, 1)
	s := Seg(Pt(0.5, -0.25), Pt(1.25, 0.5))
	c, ok := s.ClipToRect(r)
	if !ok {
		t.Fatal("corner-cutting segment not clipped")
	}
	if c.A.Y < -1e-12 || c.B.X > 1+1e-12 {
		t.Fatalf("clip out of rect: %v", c)
	}
}

func TestClipTouchingCorner(t *testing.T) {
	// Segment through the exact corner has a degenerate (point)
	// intersection; Liang-Barsky reports it with zero length.
	r := R(0, 0, 1, 1)
	s := Seg(Pt(-1, 1), Pt(1, -1)) // passes through (0,0)
	c, ok := s.ClipToRect(r)
	if ok && c.Length() > 1e-12 {
		t.Fatalf("corner touch clipped to positive length %v", c.Length())
	}
}

func TestClipVerticalSegment(t *testing.T) {
	r := R(0, 0, 1, 1)
	c, ok := Seg(Pt(0.5, -1), Pt(0.5, 2)).ClipToRect(r)
	if !ok || math.Abs(c.Length()-1) > 1e-12 {
		t.Fatalf("vertical clip %v ok=%v", c, ok)
	}
}

func TestClipPropertyEndpointsInsideRect(t *testing.T) {
	rng := xrand.New(9)
	f := func(a, b uint16) bool {
		r := R(0.25, 0.25, 0.75, 0.75)
		s := Seg(
			Pt(float64(a%100)/50-1, float64(a/100%100)/50-1),
			Pt(float64(b%100)/50-1, float64(b/100%100)/50-1),
		)
		_ = rng
		c, ok := s.ClipToRect(r)
		if !ok {
			return true
		}
		eps := 1e-9
		return c.A.X >= r.MinX-eps && c.A.X <= r.MaxX+eps &&
			c.B.X >= r.MinX-eps && c.B.X <= r.MaxX+eps &&
			c.A.Y >= r.MinY-eps && c.A.Y <= r.MaxY+eps &&
			c.B.Y >= r.MinY-eps && c.B.Y <= r.MaxY+eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestClipConsistentWithIntersects(t *testing.T) {
	rng := xrand.New(10)
	r := R(0.3, 0.3, 0.7, 0.7)
	for i := 0; i < 5000; i++ {
		s := Seg(Pt(rng.Float64(), rng.Float64()), Pt(rng.Float64(), rng.Float64()))
		_, okClip := s.ClipToRect(r)
		if okClip != s.IntersectsRect(r) {
			t.Fatalf("Clip and Intersects disagree for %v", s)
		}
	}
}

func TestStringers(t *testing.T) {
	if Pt(1, 2).String() == "" || R(0, 0, 1, 1).String() == "" || Seg(Pt(0, 0), Pt(1, 1)).String() == "" {
		t.Error("empty Stringer output")
	}
}

func TestCellOfRoundTrip(t *testing.T) {
	rng := xrand.New(11)
	region := R(-3, 1, 5, 9)
	for level := 0; level <= 4; level++ {
		for i := 0; i < 200; i++ {
			p := Pt(region.MinX+rng.Float64()*region.Width(),
				region.MinY+rng.Float64()*region.Height())
			code := region.CellOf(p, level)
			if max := uint64(1) << (2 * uint(level)); code >= max {
				t.Fatalf("level %d: code %d out of range [0,%d)", level, code, max)
			}
			cell := region.Cell(code, level)
			if !cell.Contains(p) {
				t.Fatalf("level %d: cell %v of code %d does not contain %v", level, cell, code, p)
			}
		}
	}
}

func TestCellOfMatchesQuadrantDescent(t *testing.T) {
	rng := xrand.New(12)
	region := R(0, 0, 4, 4)
	for i := 0; i < 500; i++ {
		p := Pt(rng.Float64()*4, rng.Float64()*4)
		// CellOf must equal an explicit quadrant-by-quadrant descent:
		// the code is the concatenated quadrant indices, which is also
		// the top bit-pairs of the point's Morton locational code.
		var want uint64
		cell := region
		for d := 0; d < 3; d++ {
			q := cell.QuadrantOf(p)
			want = want<<2 | uint64(q)
			cell = cell.Quadrant(q)
		}
		if got := region.CellOf(p, 3); got != want {
			t.Fatalf("CellOf(%v, 3) = %d, want %d", p, got, want)
		}
		if got := region.Cell(want, 3); got != cell {
			t.Fatalf("Cell(%d, 3) = %v, want %v", want, got, cell)
		}
	}
}

func TestCellTilesRegion(t *testing.T) {
	region := R(-1, -1, 3, 7)
	const level = 2
	n := 1 << (2 * level)
	var area float64
	for code := 0; code < n; code++ {
		c := region.Cell(uint64(code), level)
		area += c.Area()
		for other := 0; other < code; other++ {
			o := region.Cell(uint64(other), level)
			if c.Intersects(o) {
				t.Fatalf("cells %d and %d overlap: %v, %v", code, other, c, o)
			}
		}
	}
	if math.Abs(area-region.Area()) > 1e-9 {
		t.Fatalf("cells cover area %v, region area %v", area, region.Area())
	}
}

func TestCellOfClampsOutside(t *testing.T) {
	region := R(0, 0, 1, 1)
	// Points outside the region land in a boundary cell, never an
	// out-of-range code.
	for _, p := range []Point{Pt(-5, 0.5), Pt(5, 0.5), Pt(0.5, -5), Pt(5, 5)} {
		code := region.CellOf(p, 2)
		if code >= 16 {
			t.Fatalf("CellOf(%v, 2) = %d, out of range", p, code)
		}
	}
}

func TestOverlapsClosed(t *testing.T) {
	r := R(0, 0, 1, 1)
	cases := []struct {
		q    Rect
		want bool
	}{
		{R(0.5, 0.5, 2, 2), true},  // genuine overlap
		{R(1, 0, 2, 1), true},      // shared edge: closed test keeps it
		{R(1, 1, 2, 2), true},      // shared corner
		{R(1.1, 0, 2, 1), false},   // strictly east
		{R(0, -2, 1, -0.1), false}, // strictly south
		{R(-1, -1, 3, 3), true},    // containment
	}
	for _, c := range cases {
		if got := r.OverlapsClosed(c.q); got != c.want {
			t.Errorf("OverlapsClosed(%v) = %v, want %v", c.q, got, c.want)
		}
		if got := c.q.OverlapsClosed(r); got != c.want {
			t.Errorf("OverlapsClosed symmetric (%v) = %v, want %v", c.q, got, c.want)
		}
	}
}
