package xrand

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at step %d: %d vs %d", i, av, bv)
		}
	}
}

func TestSeedChangesStream(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different seeds agree %d/100 times", same)
	}
}

func TestReseed(t *testing.T) {
	r := New(7)
	first := make([]uint64, 10)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Seed(7)
	for i := range first {
		if v := r.Uint64(); v != first[i] {
			t.Fatalf("reseeded stream diverged at %d", i)
		}
	}
}

func TestZeroSeedWorks(t *testing.T) {
	r := New(0)
	// The all-zero xoshiro state is invalid; SplitMix expansion must
	// avoid it, so the output must not be constant.
	a, b := r.Uint64(), r.Uint64()
	if a == 0 && b == 0 {
		t.Fatal("zero seed produced zero state")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	seen := make([]bool, 10)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		seen[v] = true
	}
	for v, ok := range seen {
		if !ok {
			t.Errorf("Intn(10) never produced %d", v)
		}
	}
}

func TestIntnUniformity(t *testing.T) {
	r := New(6)
	const n, buckets = 100000, 7
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	want := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: %d draws, want ~%.0f", b, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(9)
	const n = 200000
	sum, sum2 := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sum2 += x * x
	}
	mean := sum / n
	varc := sum2/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean %v, want ~0", mean)
	}
	if math.Abs(varc-1) > 0.02 {
		t.Errorf("normal variance %v, want ~1", varc)
	}
}

func TestNormFloat64Tails(t *testing.T) {
	r := New(10)
	const n = 100000
	beyond2 := 0
	for i := 0; i < n; i++ {
		if math.Abs(r.NormFloat64()) > 2 {
			beyond2++
		}
	}
	frac := float64(beyond2) / n
	// P(|Z|>2) ≈ 0.0455.
	if frac < 0.035 || frac > 0.056 {
		t.Errorf("P(|Z|>2) = %v, want ~0.0455", frac)
	}
}

func TestPerm(t *testing.T) {
	r := New(12)
	for trial := 0; trial < 50; trial++ {
		p := r.Perm(20)
		seen := make([]bool, 20)
		for _, v := range p {
			if v < 0 || v >= 20 || seen[v] {
				t.Fatalf("invalid permutation %v", p)
			}
			seen[v] = true
		}
	}
}

func TestShuffle(t *testing.T) {
	r := New(13)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	orig := append([]int{}, xs...)
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum := 0
	for _, v := range xs {
		sum += v
	}
	wantSum := 0
	for _, v := range orig {
		wantSum += v
	}
	if sum != wantSum {
		t.Fatalf("shuffle changed multiset: %v", xs)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(14)
	s := r.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == s.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split stream tracks parent %d/100 times", same)
	}
}

func TestUint64BitBalance(t *testing.T) {
	r := New(15)
	const n = 10000
	ones := make([]int, 64)
	for i := 0; i < n; i++ {
		v := r.Uint64()
		for b := 0; b < 64; b++ {
			if v>>uint(b)&1 == 1 {
				ones[b]++
			}
		}
	}
	for b, c := range ones {
		if c < n/2-5*50 || c > n/2+5*50 {
			t.Errorf("bit %d set %d/%d times", b, c, n)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNormFloat64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.NormFloat64()
	}
}
