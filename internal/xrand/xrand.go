// Package xrand provides a small, deterministic pseudo-random number
// generator used by every experiment in this repository.
//
// Reproducibility is a first-class requirement: the paper's experiments
// average results over ten independently built trees, and the benchmark
// harness must regenerate the same tables on every run. The standard
// library's math/rand is seedable but its algorithm is not specified to be
// stable across Go releases, so we carry our own generator: xoshiro256**
// seeded via SplitMix64, both published by Blackman and Vigna. The
// generator passes BigCrush and is more than adequate for Monte Carlo
// geometric workloads.
//
// The zero value of Rand is not valid; use New.
package xrand

import "math"

// Rand is a deterministic pseudo-random number generator
// (xoshiro256**). It is not safe for concurrent use; create one
// generator per goroutine, derived via Split if related streams are
// needed.
type Rand struct {
	s [4]uint64

	// cached second normal deviate from the last Box-Muller pair.
	haveGauss bool
	gauss     float64
}

// New returns a generator seeded from seed. Distinct seeds give
// independent-looking streams; the all-zero internal state is impossible
// by construction of the SplitMix64 expansion.
func New(seed uint64) *Rand {
	r := &Rand{}
	r.Seed(seed)
	return r
}

// Seed resets the generator to the state derived from seed, discarding
// any cached normal deviate.
func (r *Rand) Seed(seed uint64) {
	sm := seed
	for i := range r.s {
		sm, r.s[i] = splitmix64(sm)
	}
	r.haveGauss = false
	r.gauss = 0
}

// splitmix64 advances a SplitMix64 state and returns (newState, output).
func splitmix64(x uint64) (uint64, uint64) {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return x, z
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns a uniformly distributed 64-bit value.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Split returns a new generator whose stream is statistically independent
// of r's. It is implemented by seeding a fresh generator from r's output,
// which is sufficient for Monte Carlo purposes.
func (r *Rand) Split() *Rand { return New(r.Uint64()) }

// deriveConstants are the odd 64-bit mixing constants Derive cycles
// through, one per coordinate: the SplitMix64 increment, and the two
// xxHash64 primes used for avalanche mixing.
var deriveConstants = [3]uint64{
	0x9e3779b97f4a7c15,
	0xc2b2ae3d27d4eb4f,
	0x165667b19e3779f9,
}

// Derive maps a base seed and a coordinate vector (experiment id,
// parameter, trial, ...) to a derived seed, so that every cell of a
// multi-dimensional experiment grid gets its own deterministic stream.
// The derivation is pure arithmetic on the inputs — independent of
// evaluation order — which is what lets trials run concurrently on a
// worker pool while remaining bit-identical to a sequential run: trial
// t's generator is New(Derive(seed, e, p, t)) no matter which goroutine,
// or in which order, builds it.
func Derive(seed uint64, ids ...uint64) uint64 {
	for i, id := range ids {
		seed ^= id * deriveConstants[i%len(deriveConstants)]
	}
	return seed
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.boundedUint64(uint64(n)))
}

// Int63 returns a uniform non-negative int64.
func (r *Rand) Int63() int64 { return int64(r.Uint64() >> 1) }

// boundedUint64 returns a uniform value in [0, n) using Lemire's
// nearly-divisionless rejection method.
func (r *Rand) boundedUint64(n uint64) uint64 {
	for {
		v := r.Uint64()
		hi, lo := mul64(v, n)
		if lo >= n || lo >= (-n)%n {
			return hi
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	aLo, aHi := a&mask32, a>>32
	bLo, bHi := b&mask32, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += aLo * bHi
	hi = aHi*bHi + w2 + w1>>32
	lo = a * b
	return hi, lo
}

// NormFloat64 returns a standard normal deviate using the Box-Muller
// transform. Deviates come in pairs; the second of each pair is cached.
func (r *Rand) NormFloat64() float64 {
	if r.haveGauss {
		r.haveGauss = false
		return r.gauss
	}
	// Box-Muller on (0,1] to avoid log(0).
	u := 1.0 - r.Float64()
	v := r.Float64()
	rad := math.Sqrt(-2 * math.Log(u))
	theta := 2 * math.Pi * v
	r.gauss = rad * math.Sin(theta)
	r.haveGauss = true
	return rad * math.Cos(theta)
}

// Perm returns a uniform random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomizes the order of n elements using swap, in the manner of
// math/rand.Shuffle.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
