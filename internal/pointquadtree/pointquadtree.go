// Package pointquadtree implements the classical point quadtree of
// Finkel and Bentley [Fink74], the Section II counterexample to regular
// decomposition: every stored point becomes an internal node whose
// coordinates split the plane into four irregular quadrants, so "the
// shape of the final structure depends critically on the order in which
// the information was inserted into the tree."
//
// It is included as a substrate for the extension experiment E13, which
// contrasts its insertion-order sensitivity and occupancy behavior with
// the PR quadtree the population model targets: a point quadtree has no
// bucket populations at all (every node holds exactly one point), so the
// model's natural analogues are depth and balance statistics.
package pointquadtree

import (
	"errors"
	"fmt"
	"math"

	"popana/internal/geom"
)

// ErrOutOfRegion is returned when a point outside the region is inserted.
var ErrOutOfRegion = errors.New("pointquadtree: point outside region")

// node is one stored point; children are the four irregular quadrants
// around it (indexed like geom quadrants: bit 0 = east, bit 1 = north).
type node struct {
	p        geom.Point
	val      any
	children [4]*node
}

// Tree is a classical point quadtree over a rectangle.
type Tree struct {
	region geom.Rect
	root   *node
	size   int
}

// New returns an empty tree over region (the zero rectangle selects
// geom.UnitSquare).
func New(region geom.Rect) (*Tree, error) {
	if region == (geom.Rect{}) {
		region = geom.UnitSquare
	}
	if region.Empty() {
		return nil, fmt.Errorf("pointquadtree: empty region %v", region)
	}
	return &Tree{region: region}, nil
}

// MustNew is New that panics on configuration errors.
func MustNew(region geom.Rect) *Tree {
	t, err := New(region)
	if err != nil {
		panic(err)
	}
	return t
}

// Len returns the number of stored points.
func (t *Tree) Len() int { return t.size }

// Region returns the tree's universe rectangle.
func (t *Tree) Region() geom.Rect { return t.region }

// quadrantAround returns which irregular quadrant of pivot contains p.
func quadrantAround(pivot, p geom.Point) int {
	q := 0
	if p.X >= pivot.X {
		q |= 1
	}
	if p.Y >= pivot.Y {
		q |= 2
	}
	return q
}

// Insert stores val at p, replacing the value if p is already present.
func (t *Tree) Insert(p geom.Point, val any) (replaced bool, err error) {
	if !t.region.Contains(p) {
		return false, fmt.Errorf("%w: %v not in %v", ErrOutOfRegion, p, t.region)
	}
	if t.root == nil {
		t.root = &node{p: p, val: val}
		t.size++
		return false, nil
	}
	n := t.root
	for {
		if n.p == p {
			n.val = val
			return true, nil
		}
		q := quadrantAround(n.p, p)
		if n.children[q] == nil {
			n.children[q] = &node{p: p, val: val}
			t.size++
			return false, nil
		}
		n = n.children[q]
	}
}

// Get returns the value stored at p.
func (t *Tree) Get(p geom.Point) (any, bool) {
	n := t.root
	for n != nil {
		if n.p == p {
			return n.val, true
		}
		n = n.children[quadrantAround(n.p, p)]
	}
	return nil, false
}

// Contains reports whether p is stored.
func (t *Tree) Contains(p geom.Point) bool {
	_, ok := t.Get(p)
	return ok
}

// Range calls visit for every stored point in the closed query
// rectangle, pruning subtrees whose quadrant cannot intersect it;
// returning false stops the scan.
func (t *Tree) Range(query geom.Rect, visit func(p geom.Point, v any) bool) bool {
	return rangeQuery(t.root, t.region, query, visit)
}

func rangeQuery(n *node, cell, query geom.Rect, visit func(geom.Point, any) bool) bool {
	if n == nil {
		return true
	}
	if query.ContainsClosed(n.p) {
		if !visit(n.p, n.val) {
			return false
		}
	}
	// Child q covers the sub-rectangle of cell around n.p.
	for q := 0; q < 4; q++ {
		child := childCell(cell, n.p, q)
		if child.MinX > query.MaxX || query.MinX > child.MaxX ||
			child.MinY > query.MaxY || query.MinY > child.MaxY {
			continue
		}
		if !rangeQuery(n.children[q], child, query, visit) {
			return false
		}
	}
	return true
}

// childCell returns the irregular quadrant q of cell pivoted at p.
func childCell(cell geom.Rect, p geom.Point, q int) geom.Rect {
	out := cell
	if q&1 == 0 {
		out.MaxX = p.X
	} else {
		out.MinX = p.X
	}
	if q&2 == 0 {
		out.MaxY = p.Y
	} else {
		out.MinY = p.Y
	}
	return out
}

// Nearest returns the stored point closest to p (Euclidean), with its
// value; ok is false for an empty tree.
func (t *Tree) Nearest(p geom.Point) (best geom.Point, v any, ok bool) {
	if t.root == nil {
		return geom.Point{}, nil, false
	}
	bestD := math.Inf(1)
	nearest(t.root, t.region, p, &bestD, &best, &v)
	return best, v, true
}

func nearest(n *node, cell geom.Rect, p geom.Point, bestD *float64, best *geom.Point, bestV *any) {
	if n == nil {
		return
	}
	if d := n.p.Dist2(p); d < *bestD {
		*bestD = d
		*best = n.p
		*bestV = n.val
	}
	// Order children by distance to their cells.
	type cand struct {
		q int
		d float64
	}
	var cands [4]cand
	for q := 0; q < 4; q++ {
		cands[q] = cand{q, rectDist2(childCell(cell, n.p, q), p)}
	}
	for i := 1; i < 4; i++ {
		for j := i; j > 0 && cands[j].d < cands[j-1].d; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	for _, c := range cands {
		if c.d >= *bestD {
			return
		}
		nearest(n.children[c.q], childCell(cell, n.p, c.q), p, bestD, best, bestV)
	}
}

func rectDist2(r geom.Rect, p geom.Point) float64 {
	dx := math.Max(math.Max(r.MinX-p.X, 0), p.X-r.MaxX)
	dy := math.Max(math.Max(r.MinY-p.Y, 0), p.Y-r.MaxY)
	return dx*dx + dy*dy
}

// Shape summarizes the structure: the statistics that replace occupancy
// populations for a structure with exactly one point per node.
type Shape struct {
	Nodes int
	// Height is the deepest node's depth (root = 0); -1 when empty.
	Height int
	// TotalDepth is the sum of node depths; TotalDepth/Nodes is the
	// expected comparison count for a successful search.
	TotalDepth int
	// LeafCount is the number of nodes with no children.
	LeafCount int
}

// MeanDepth returns the average node depth.
func (s Shape) MeanDepth() float64 {
	if s.Nodes == 0 {
		return math.NaN()
	}
	return float64(s.TotalDepth) / float64(s.Nodes)
}

// Analyze walks the tree and returns its shape statistics.
func (t *Tree) Analyze() Shape {
	s := Shape{Height: -1}
	var walk func(n *node, depth int)
	walk = func(n *node, depth int) {
		if n == nil {
			return
		}
		s.Nodes++
		s.TotalDepth += depth
		if depth > s.Height {
			s.Height = depth
		}
		leaf := true
		for _, c := range n.children {
			if c != nil {
				leaf = false
				walk(c, depth+1)
			}
		}
		if leaf {
			s.LeafCount++
		}
	}
	walk(t.root, 0)
	return s
}
