package pointquadtree

import (
	"math"
	"testing"

	"popana/internal/geom"
	"popana/internal/xrand"
)

func randomPoints(rng *xrand.Rand, n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64(), rng.Float64())
	}
	return pts
}

func TestInsertGet(t *testing.T) {
	tr := MustNew(geom.Rect{})
	pts := randomPoints(xrand.New(1), 500)
	for i, p := range pts {
		replaced, err := tr.Insert(p, i)
		if err != nil {
			t.Fatal(err)
		}
		if replaced {
			t.Fatal("fresh point reported replaced")
		}
	}
	if tr.Len() != 500 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i, p := range pts {
		v, ok := tr.Get(p)
		if !ok || v != i {
			t.Fatalf("Get(%v) = %v, %v", p, v, ok)
		}
	}
	if tr.Contains(geom.Pt(0.424242, 0.73)) {
		t.Fatal("contains absent point")
	}
}

func TestReplace(t *testing.T) {
	tr := MustNew(geom.Rect{})
	p := geom.Pt(0.5, 0.5)
	if _, err := tr.Insert(p, "a"); err != nil {
		t.Fatal(err)
	}
	replaced, err := tr.Insert(p, "b")
	if err != nil || !replaced {
		t.Fatalf("replace = %v, %v", replaced, err)
	}
	if v, _ := tr.Get(p); v != "b" {
		t.Fatalf("value %v", v)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestOutOfRegion(t *testing.T) {
	tr := MustNew(geom.Rect{})
	if _, err := tr.Insert(geom.Pt(2, 2), nil); err == nil {
		t.Fatal("out-of-region accepted")
	}
	if _, err := New(geom.R(1, 1, 1, 5)); err == nil {
		t.Fatal("empty region accepted")
	}
}

func TestOrderDependence(t *testing.T) {
	// The defining contrast with the PR quadtree: the same point set
	// inserted in different orders gives different shapes.
	rng := xrand.New(5)
	pts := randomPoints(rng, 200)
	build := func(order []int) Shape {
		tr := MustNew(geom.Rect{})
		for _, i := range order {
			if _, err := tr.Insert(pts[i], i); err != nil {
				t.Fatal(err)
			}
		}
		return tr.Analyze()
	}
	id := make([]int, len(pts))
	for i := range id {
		id[i] = i
	}
	s1 := build(id)
	different := false
	for trial := 0; trial < 5 && !different; trial++ {
		if s2 := build(rng.Perm(len(pts))); s2.Height != s1.Height || s2.TotalDepth != s1.TotalDepth {
			different = true
		}
	}
	if !different {
		t.Fatal("point quadtree shape did not depend on insertion order (5 permutations)")
	}
}

func TestRandomOrderIsShallow(t *testing.T) {
	// Random insertion order gives expected depth O(log n); sorted
	// insertion along the diagonal degenerates to a path (every point
	// is in quadrant 3 of its predecessor).
	rng := xrand.New(6)
	n := 512
	tr := MustNew(geom.Rect{})
	for _, p := range randomPoints(rng, n) {
		if _, err := tr.Insert(p, nil); err != nil {
			t.Fatal(err)
		}
	}
	random := tr.Analyze()
	if random.Height > 40 {
		t.Fatalf("random order height %d", random.Height)
	}
	deg := MustNew(geom.Rect{})
	for i := 0; i < 64; i++ {
		if _, err := deg.Insert(geom.Pt(float64(i)/64, float64(i)/64), nil); err != nil {
			t.Fatal(err)
		}
	}
	if s := deg.Analyze(); s.Height != 63 {
		t.Fatalf("sorted diagonal height %d, want 63 (a path)", s.Height)
	}
}

func TestRangeMatchesBruteForce(t *testing.T) {
	rng := xrand.New(7)
	tr := MustNew(geom.Rect{})
	pts := randomPoints(rng, 400)
	for i, p := range pts {
		if _, err := tr.Insert(p, i); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 100; trial++ {
		x1, y1 := rng.Float64(), rng.Float64()
		x2, y2 := rng.Float64(), rng.Float64()
		q := geom.R(math.Min(x1, x2), math.Min(y1, y2), math.Max(x1, x2), math.Max(y1, y2))
		want := 0
		for _, p := range pts {
			if q.ContainsClosed(p) {
				want++
			}
		}
		got := 0
		tr.Range(q, func(geom.Point, any) bool { got++; return true })
		if got != want {
			t.Fatalf("trial %d: range %d, want %d", trial, got, want)
		}
	}
}

func TestRangeEarlyStop(t *testing.T) {
	tr := MustNew(geom.Rect{})
	for i, p := range randomPoints(xrand.New(8), 50) {
		if _, err := tr.Insert(p, i); err != nil {
			t.Fatal(err)
		}
	}
	n := 0
	if tr.Range(geom.UnitSquare, func(geom.Point, any) bool { n++; return false }) {
		t.Fatal("early stop reported complete")
	}
}

func TestNearestMatchesBruteForce(t *testing.T) {
	rng := xrand.New(9)
	tr := MustNew(geom.Rect{})
	pts := randomPoints(rng, 300)
	for i, p := range pts {
		if _, err := tr.Insert(p, i); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 200; trial++ {
		q := geom.Pt(rng.Float64(), rng.Float64())
		best, _, ok := tr.Nearest(q)
		if !ok {
			t.Fatal("Nearest failed")
		}
		bd := math.Inf(1)
		for _, p := range pts {
			bd = math.Min(bd, p.Dist2(q))
		}
		if math.Abs(best.Dist2(q)-bd) > 1e-15 {
			t.Fatalf("nearest %v, brute %v", best.Dist2(q), bd)
		}
	}
}

func TestNearestEmpty(t *testing.T) {
	tr := MustNew(geom.Rect{})
	if _, _, ok := tr.Nearest(geom.Pt(0.5, 0.5)); ok {
		t.Fatal("Nearest on empty tree")
	}
}

func TestAnalyze(t *testing.T) {
	tr := MustNew(geom.Rect{})
	if s := tr.Analyze(); s.Nodes != 0 || s.Height != -1 || !math.IsNaN(s.MeanDepth()) {
		t.Fatalf("empty shape %+v", s)
	}
	// Root plus two children: depths 0, 1, 1.
	if _, err := tr.Insert(geom.Pt(0.5, 0.5), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Insert(geom.Pt(0.2, 0.2), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Insert(geom.Pt(0.8, 0.8), nil); err != nil {
		t.Fatal(err)
	}
	s := tr.Analyze()
	if s.Nodes != 3 || s.Height != 1 || s.TotalDepth != 2 || s.LeafCount != 2 {
		t.Fatalf("shape %+v", s)
	}
	if s.MeanDepth() != 2.0/3 {
		t.Fatalf("mean depth %v", s.MeanDepth())
	}
}
