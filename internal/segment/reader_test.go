package segment

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"popana/internal/faultinject"
	"popana/internal/geom"
)

// bulkEntries returns n sorted entries with payloads big enough that a
// run spans many entry blocks.
func bulkEntries(n, payload int) []Entry {
	out := make([]Entry, n)
	for i := range out {
		p := make([]byte, payload)
		for j := range p {
			p[j] = byte(i + j)
		}
		out[i] = Entry{
			Code:    uint64(i) * 3,
			ID:      uint64(1000 + i),
			X:       float64(i) / 1000,
			Y:       float64(i) / 500,
			Payload: p,
		}
	}
	return out
}

func writeBulk(t *testing.T, dir string, n, payload int) (string, []Entry) {
	t.Helper()
	path := filepath.Join(dir, "run-0-000000001.seg")
	entries := bulkEntries(n, payload)
	meta := Meta{Kind: Delta, Shard: 0, Seq: 1, Region: geom.Rect{MaxX: 1, MaxY: 1}, Depth: 4}
	if err := Write(path, meta, nil, nil, entries, nil); err != nil {
		t.Fatal(err)
	}
	return path, entries
}

func TestReaderIteratesAllBlocks(t *testing.T) {
	path, entries := writeBulk(t, t.TempDir(), 500, 100)
	r, err := OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.NumBlocks() < 10 {
		t.Fatalf("expected many entry blocks, got %d", r.NumBlocks())
	}
	if r.Meta().Entries != len(entries) {
		t.Fatalf("meta entries = %d, want %d", r.Meta().Entries, len(entries))
	}
	c := r.Cursor()
	for i := range entries {
		e, ok, err := c.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("cursor ended at %d of %d", i, len(entries))
		}
		if e.Code != entries[i].Code || e.ID != entries[i].ID {
			t.Fatalf("entry %d = %+v, want %+v", i, e, entries[i])
		}
	}
	if _, ok, _ := c.Next(); ok {
		t.Fatal("cursor yielded past the end")
	}
	st := c.Stats()
	if st.BlocksLoaded != r.NumBlocks() || st.EntriesScanned != len(entries) {
		t.Fatalf("stats = %+v, want %d blocks / %d entries", st, r.NumBlocks(), len(entries))
	}
}

func TestCursorSeekGESkipsBlocks(t *testing.T) {
	path, entries := writeBulk(t, t.TempDir(), 500, 100)
	r, err := OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	c := r.Cursor()
	// Jump straight to the last quarter: the blocks below must not load.
	target := entries[3*len(entries)/4].Code
	e, ok, err := c.SeekGE(target)
	if err != nil || !ok {
		t.Fatalf("SeekGE(%d): ok=%v err=%v", target, ok, err)
	}
	if e.Code != target {
		t.Fatalf("SeekGE landed on code %d, want %d", e.Code, target)
	}
	if st := c.Stats(); st.BlocksLoaded > 1 {
		t.Fatalf("SeekGE loaded %d blocks, want 1", st.BlocksLoaded)
	}
	// Seeking to a code between entries lands on the next one.
	e, ok, err = c.SeekGE(e.Code + 1)
	if err != nil || !ok {
		t.Fatalf("second seek: ok=%v err=%v", ok, err)
	}
	if e.Code != target+3*2 && e.Code != target+3 {
		t.Fatalf("second seek landed on %d", e.Code)
	}
	// Past the end.
	if _, ok, _ := c.SeekGE(entries[len(entries)-1].Code + 1); ok {
		t.Fatal("seek past the last code still yielded")
	}
}

func TestReaderFind(t *testing.T) {
	path, entries := writeBulk(t, t.TempDir(), 300, 80)
	r, err := OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for _, i := range []int{0, 1, 150, 298, 299} {
		want := entries[i]
		got, ok, err := r.Find(want.Code, want.X, want.Y)
		if err != nil {
			t.Fatal(err)
		}
		if !ok || got.ID != want.ID {
			t.Fatalf("Find(%d) = %+v ok=%v, want id %d", want.Code, got, ok, want.ID)
		}
	}
	if _, ok, _ := r.Find(entries[10].Code+1, 0, 0); ok {
		t.Fatal("Find matched a key not in the run")
	}
	if _, ok, _ := r.Find(entries[10].Code, -99, -99); ok {
		t.Fatal("Find matched wrong coordinates on an existing code")
	}
}

func TestReaderRejectsTornAndCorrupt(t *testing.T) {
	dir := t.TempDir()
	path, _ := writeBulk(t, dir, 50, 40)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	torn := filepath.Join(dir, "torn.seg")
	if err := os.WriteFile(torn, data[:len(data)-footerSize-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenReader(torn); !errors.Is(err, ErrTorn) {
		t.Fatalf("torn open = %v, want ErrTorn", err)
	}

	// Damage a metadata block (the entry-block index) but keep the
	// footer: corrupt, detected at open.
	corrupt := append([]byte(nil), data...)
	corrupt[headerSize+8*3+4*3+30] ^= 0xFF
	corruptPath := filepath.Join(dir, "corrupt.seg")
	if err := os.WriteFile(corruptPath, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenReader(corruptPath); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt open = %v, want ErrCorrupt", err)
	}
}

func TestBlockPoisonHealsOnReread(t *testing.T) {
	path, entries := writeBulk(t, t.TempDir(), 200, 60)
	r, err := OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	inj := faultinject.New(7)
	inj.Enable(faultinject.SegmentBlockPoison, 1) // poison EVERY first read
	r.SetInjector(inj)
	c := r.Cursor()
	n := 0
	for {
		e, ok, err := c.Next()
		if err != nil {
			t.Fatalf("poisoned read did not heal: %v", err)
		}
		if !ok {
			break
		}
		if e.Code != entries[n].Code {
			t.Fatalf("entry %d code = %d, want %d", n, e.Code, entries[n].Code)
		}
		n++
	}
	if n != len(entries) {
		t.Fatalf("read %d entries, want %d", n, len(entries))
	}
	if inj.Fired(faultinject.SegmentBlockPoison) != r.NumBlocks() {
		t.Fatalf("poison fired %d times, want once per block (%d)",
			inj.Fired(faultinject.SegmentBlockPoison), r.NumBlocks())
	}
}

func TestBlockPersistentCorruptionFails(t *testing.T) {
	dir := t.TempDir()
	path, _ := writeBulk(t, dir, 200, 60)
	// Damage one entry block ON DISK: both read attempts see the same
	// bad bytes, so the retry must not mask it.
	r, err := OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	info := r.index[r.NumBlocks()/2]
	r.Close()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xFF}, int64(info.off)+8+int64(info.payLen)/3); err != nil {
		t.Fatal(err)
	}
	f.Close()
	r, err = OpenReader(path) // metadata blocks intact: open succeeds
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	c := r.Cursor()
	for {
		_, ok, err := c.Next()
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("err = %v, want ErrCorrupt", err)
			}
			return
		}
		if !ok {
			t.Fatal("cursor crossed a corrupt block without failing")
		}
	}
}

func TestCacheServesHitsAndEvictsUnderPressure(t *testing.T) {
	path, _ := writeBulk(t, t.TempDir(), 600, 100)
	r, err := OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.NumBlocks() < 8 {
		t.Fatalf("want many blocks, got %d", r.NumBlocks())
	}
	// Budget for roughly three blocks: a full scan must evict.
	cache := NewCache(3 * TargetBlockBytes)
	r.SetCache(cache)
	for i := 0; i < r.NumBlocks(); i++ {
		if _, err := r.Block(i); err != nil {
			t.Fatal(err)
		}
	}
	st := cache.Stats()
	if st.Misses != int64(r.NumBlocks()) || st.Hits != 0 {
		t.Fatalf("cold scan stats = %+v", st)
	}
	if st.Evictions == 0 {
		t.Fatal("scan past the budget evicted nothing")
	}
	if st.Used > st.Budget {
		t.Fatalf("cache over budget: %+v", st)
	}
	// The most recent block is resident: reading it again hits.
	if _, err := r.Block(r.NumBlocks() - 1); err != nil {
		t.Fatal(err)
	}
	if st = cache.Stats(); st.Hits != 1 {
		t.Fatalf("warm reread stats = %+v, want 1 hit", st)
	}
	// Drop empties residency but keeps history.
	cache.Drop()
	if st = cache.Stats(); st.Used != 0 || st.Hits != 1 {
		t.Fatalf("post-drop stats = %+v", st)
	}
	if _, err := r.Block(0); err != nil {
		t.Fatal(err)
	}
	if st = cache.Stats(); st.Misses != int64(r.NumBlocks())+1 {
		t.Fatalf("post-drop read stats = %+v", st)
	}
}

func TestCacheNeverAdmitsOversizedOrUnverified(t *testing.T) {
	path, _ := writeBulk(t, t.TempDir(), 40, 60)
	r, err := OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	// A budget smaller than any block: nothing is ever admitted and the
	// budget is never exceeded.
	cache := NewCache(16)
	r.SetCache(cache)
	for i := 0; i < r.NumBlocks(); i++ {
		if _, err := r.Block(i); err != nil {
			t.Fatal(err)
		}
	}
	if st := cache.Stats(); st.Used != 0 || st.Hits != 0 {
		t.Fatalf("tiny-budget stats = %+v", st)
	}

	// Poisoned first reads must not leave poisoned bytes in the cache:
	// every hit after a heal serves verified data.
	big := NewCache(1 << 20)
	r.SetCache(big)
	inj := faultinject.New(3)
	inj.Enable(faultinject.SegmentBlockPoison, 1)
	r.SetInjector(inj)
	first, err := r.Block(0)
	if err != nil {
		t.Fatal(err)
	}
	again, err := r.Block(0) // cache hit; poison must not fire again
	if err != nil {
		t.Fatal(err)
	}
	if &first[0] != &again[0] {
		t.Fatal("second read was not a cache hit")
	}
	if inj.Fired(faultinject.SegmentBlockPoison) != 1 {
		t.Fatalf("poison fired %d times, want 1", inj.Fired(faultinject.SegmentBlockPoison))
	}
}

func TestCacheDropReaderEvictsOnClose(t *testing.T) {
	dir := t.TempDir()
	pathA, _ := writeBulk(t, dir, 100, 60)
	cache := NewCache(1 << 20)
	r, err := OpenReader(pathA)
	if err != nil {
		t.Fatal(err)
	}
	r.SetCache(cache)
	for i := 0; i < r.NumBlocks(); i++ {
		if _, err := r.Block(i); err != nil {
			t.Fatal(err)
		}
	}
	if st := cache.Stats(); st.Used == 0 {
		t.Fatal("nothing cached")
	}
	r.Close()
	if st := cache.Stats(); st.Used != 0 {
		t.Fatalf("closed reader left %d bytes resident", st.Used)
	}
	// A fresh reader of the same file gets a fresh identity: no stale
	// hits from the closed reader's blocks.
	r2, err := OpenReader(pathA)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	r2.SetCache(cache)
	if _, err := r2.Block(0); err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Hits != 0 {
		t.Fatalf("reopened reader hit a stale cache entry: %+v", st)
	}
}

func TestNilCacheIsValid(t *testing.T) {
	var c *Cache
	if st := c.Stats(); st != (CacheStats{}) {
		t.Fatalf("nil stats = %+v", st)
	}
	c.Drop()
	c.add(cacheKey{}, nil, 10)
	c.dropReader(1)
	if _, ok := c.get(cacheKey{}); ok {
		t.Fatal("nil cache returned a hit")
	}
	if NewCache(0) != nil || NewCache(-5) != nil {
		t.Fatal("non-positive budget should build a nil cache")
	}
}

func TestMergedCursorNewestWins(t *testing.T) {
	// Same key K in a full run (oldest), a delta run, and the WAL tail
	// (newest): the tail's value must win. Key D is deleted by the
	// delta's tombstone; key O exists only in the oldest run.
	k := func(code uint64, id uint64, val string) Entry {
		return Entry{Code: code, ID: id, X: float64(code), Y: 0, Payload: []byte(val)}
	}
	tomb := func(code uint64) Entry {
		return Entry{Code: code, X: float64(code), Y: 0, Tombstone: true}
	}
	full := []Entry{k(1, 10, "old-K"), k(2, 20, "O"), k(5, 50, "D")}
	delta := []Entry{k(1, 11, "mid-K"), tomb(5)}
	tail := []Entry{k(1, 12, "new-K"), k(9, 90, "T")}
	m := NewMergedCursor(NewSliceCursor(full), NewSliceCursor(delta), NewSliceCursor(tail))
	var got []Entry
	for {
		e, ok, err := m.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got = append(got, e)
	}
	want := []struct {
		code uint64
		id   uint64
		val  string
	}{{1, 12, "new-K"}, {2, 20, "O"}, {9, 90, "T"}}
	if len(got) != len(want) {
		t.Fatalf("merged %d entries (%+v), want %d", len(got), got, len(want))
	}
	for i, w := range want {
		if got[i].Code != w.code || got[i].ID != w.id || string(got[i].Payload) != w.val {
			t.Fatalf("merged[%d] = %+v, want %+v", i, got[i], w)
		}
	}
	// The stream must agree with the compaction-side Merge.
	ref := Merge(full, delta, tail)
	if len(ref) != len(got) {
		t.Fatalf("streamed %d entries, Merge produced %d", len(got), len(ref))
	}
	for i := range ref {
		if !sameKey(ref[i], got[i]) || ref[i].ID != got[i].ID {
			t.Fatalf("stream diverges from Merge at %d: %+v vs %+v", i, got[i], ref[i])
		}
	}
}

func TestMergedCursorSeekGE(t *testing.T) {
	k := func(code uint64) Entry { return Entry{Code: code, ID: code, X: float64(code)} }
	a := []Entry{k(1), k(4), k(8), k(20)}
	b := []Entry{k(2), k(8), k(30)} // 8 duplicated: b is newer, wins
	m := NewMergedCursor(NewSliceCursor(a), NewSliceCursor(b))
	e, ok, err := m.SeekGE(5)
	if err != nil || !ok || e.Code != 8 {
		t.Fatalf("SeekGE(5) = %+v ok=%v err=%v, want code 8", e, ok, err)
	}
	if e.ID != 8 {
		t.Fatalf("dup key served id %d", e.ID)
	}
	// After the seek, iteration resumes in order without replaying the
	// duplicate from the older input.
	e, ok, _ = m.Next()
	if !ok || e.Code != 20 {
		t.Fatalf("next after seek = %+v ok=%v, want 20", e, ok)
	}
	e, ok, _ = m.SeekGE(25)
	if !ok || e.Code != 30 {
		t.Fatalf("SeekGE(25) = %+v ok=%v, want 30", e, ok)
	}
	if _, ok, _ = m.Next(); ok {
		t.Fatal("stream should be exhausted")
	}
}

func TestMergedCursorSeekSkipsTombstonedKey(t *testing.T) {
	k := func(code uint64) Entry { return Entry{Code: code, ID: code, X: float64(code)} }
	tomb := func(code uint64) Entry { return Entry{Code: code, X: float64(code), Tombstone: true} }
	old := []Entry{k(10), k(12)}
	newer := []Entry{tomb(10)}
	m := NewMergedCursor(NewSliceCursor(old), NewSliceCursor(newer))
	e, ok, err := m.SeekGE(10)
	if err != nil || !ok || e.Code != 12 {
		t.Fatalf("SeekGE over tombstoned key = %+v ok=%v err=%v, want 12", e, ok, err)
	}
}

func TestReaderOverRunCursors(t *testing.T) {
	// End-to-end: two sealed runs merged through real disk cursors.
	dir := t.TempDir()
	mk := func(seq uint64, es []Entry) *Reader {
		p := filepath.Join(dir, fmt.Sprintf("run-0-%09d.seg", seq))
		meta := Meta{Kind: Delta, Shard: 0, Seq: seq, Region: geom.Rect{MaxX: 1, MaxY: 1}, Depth: 4}
		if err := Write(p, meta, nil, nil, es, nil); err != nil {
			t.Fatal(err)
		}
		r, err := OpenReader(p)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { r.Close() })
		return r
	}
	oldRun := bulkEntries(300, 40)
	newRun := make([]Entry, 0, 100)
	for i := 0; i < 300; i += 3 { // overwrite every third key
		e := oldRun[i]
		e.ID += 100000
		newRun = append(newRun, e)
	}
	ra, rb := mk(1, oldRun), mk(2, newRun)
	m := NewMergedCursor(ra.Cursor(), rb.Cursor())
	n := 0
	for {
		e, ok, err := m.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		want := oldRun[n]
		wantID := want.ID
		if n%3 == 0 {
			wantID += 100000
		}
		if e.Code != want.Code || e.ID != wantID {
			t.Fatalf("merged[%d] = code %d id %d, want code %d id %d", n, e.Code, e.ID, want.Code, wantID)
		}
		n++
	}
	if n != 300 {
		t.Fatalf("merged %d entries, want 300", n)
	}
}
