package segment

// Reader serves a sealed run block-by-block without materializing its
// entries: it validates the footer and header once at open, holds the
// three small metadata blocks (codes, starts, entry-block index) in
// memory, and fetches entry blocks on demand with ReadAt. An optional
// shared Cache keeps hot decoded blocks resident under a byte budget.
//
// Every fetched block is verified against its stored CRC-32C before a
// single entry is decoded. A mismatch is retried once — a damaged
// in-flight buffer (the SegmentBlockPoison fault models it) heals on
// the re-read — and only a mismatch that survives the retry is reported
// as ErrCorrupt. Unverified bytes are never admitted to the cache.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync/atomic"

	"popana/internal/faultinject"
)

// readerIDs hands out process-unique reader identities so cache keys
// from a closed reader can never collide with a later reader of the
// same (or a different) file.
var readerIDs atomic.Uint64

// Reader is an open sealed run serving entries block-by-block. Methods
// are safe for concurrent use once the reader is configured (SetCache
// and SetInjector are part of setup, not of concurrent operation).
type Reader struct {
	path   string
	f      *os.File
	meta   Meta
	codes  []uint64
	starts []int32
	index  []blockInfo
	filter *prefixFilter // nil for pre-v3 runs: every probe passes
	id     uint64
	cache  *Cache
	inj    *faultinject.Injector
}

// OpenReader validates the run at path (footer, header, and metadata
// block checksums — entry blocks are verified lazily as they are
// fetched) and returns a Reader positioned to serve it. The same
// ErrTorn/ErrCorrupt classification as Read applies.
func OpenReader(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("segment: open %s: %w", path, err)
	}
	r, err := newReader(path, f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return r, nil
}

func newReader(path string, f *os.File) (*Reader, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("segment: stat %s: %w", path, err)
	}
	if fi.Size() < headerSize+footerSize {
		return nil, fmt.Errorf("segment: %s: %w: %d bytes", path, ErrTorn, fi.Size())
	}
	var footer [footerSize]byte
	if _, err := f.ReadAt(footer[:], fi.Size()-footerSize); err != nil && !errors.Is(err, io.EOF) {
		return nil, fmt.Errorf("segment: read footer %s: %w", path, err)
	}
	if [8]byte(footer[12:20]) != endMagic {
		return nil, fmt.Errorf("segment: %s: %w: no footer magic", path, ErrTorn)
	}
	crc := crc32.Checksum(footer[0:8], castagnoli)
	crc = crc32.Update(crc, castagnoli, endMagic[:])
	if binary.LittleEndian.Uint32(footer[8:12]) != crc {
		return nil, fmt.Errorf("segment: %s: %w: footer checksum", path, ErrTorn)
	}
	bodyLen := binary.LittleEndian.Uint64(footer[0:8])
	if bodyLen != uint64(fi.Size())-footerSize {
		return nil, fmt.Errorf("segment: %s: %w: footer covers %d bytes, file body is %d",
			path, ErrCorrupt, bodyLen, fi.Size()-int64(footerSize))
	}
	var hdr [headerSize]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return nil, fmt.Errorf("segment: read header %s: %w", path, err)
	}
	meta, version, _, err := readHeader(hdr[:])
	if err != nil {
		return nil, fmt.Errorf("segment: %s: %w", path, err)
	}
	r := &Reader{path: path, f: f, meta: meta, id: readerIDs.Add(1)}

	// The metadata blocks (three before v3, four with the filter)
	// follow the header back to back; read each frame sequentially by
	// offset.
	off := uint64(headerSize)
	metaBlocks := make([][]byte, numMetaBlocks(version))
	for i := range metaBlocks {
		payload, next, err := r.readFrameAt(off, bodyLen)
		if err != nil {
			return nil, fmt.Errorf("segment: %s: block %d: %w", path, i, err)
		}
		metaBlocks[i], off = payload, next
	}
	if r.codes, err = decodeCodes(metaBlocks[0], meta.Leaves); err != nil {
		return nil, fmt.Errorf("segment: %s: %w", path, err)
	}
	if r.starts, err = decodeStarts(metaBlocks[1], meta.Leaves); err != nil {
		return nil, fmt.Errorf("segment: %s: %w", path, err)
	}
	if r.index, err = decodeIndex(metaBlocks[2]); err != nil {
		return nil, fmt.Errorf("segment: %s: %w", path, err)
	}
	if version >= 3 {
		if r.filter, err = decodeFilter(metaBlocks[3]); err != nil {
			return nil, fmt.Errorf("segment: %s: %w", path, err)
		}
	}
	// Cross-check the index against the file extents so a later Block
	// call can trust the offsets it reads at.
	want := off
	total := 0
	for bi, info := range r.index {
		if info.off != want {
			return nil, fmt.Errorf("segment: %s: %w: entry block %d at offset %d, index says %d",
				path, ErrCorrupt, bi, want, info.off)
		}
		if info.count <= 0 {
			return nil, fmt.Errorf("segment: %s: %w: entry block %d indexes %d entries",
				path, ErrCorrupt, bi, info.count)
		}
		want += frameSize(info.payLen)
		total += info.count
	}
	if want != bodyLen {
		return nil, fmt.Errorf("segment: %s: %w: entry blocks end at %d, body is %d bytes",
			path, ErrCorrupt, want, bodyLen)
	}
	if total != meta.Entries {
		return nil, fmt.Errorf("segment: %s: %w: index covers %d entries, header says %d",
			path, ErrCorrupt, total, meta.Entries)
	}
	for bi := 1; bi < len(r.index); bi++ {
		if r.index[bi].firstCode < r.index[bi-1].lastCode {
			return nil, fmt.Errorf("segment: %s: %w: entry blocks %d and %d overlap in code space",
				path, ErrCorrupt, bi-1, bi)
		}
	}
	return r, nil
}

// readFrameAt reads and verifies one block frame starting at off,
// returning its payload and the offset just past the frame.
func (r *Reader) readFrameAt(off, bodyLen uint64) ([]byte, uint64, error) {
	var lenBuf [8]byte
	if off+8 > bodyLen {
		return nil, 0, fmt.Errorf("%w: block length truncated", ErrCorrupt)
	}
	if _, err := r.f.ReadAt(lenBuf[:], int64(off)); err != nil {
		return nil, 0, fmt.Errorf("read %s: %w", r.path, err)
	}
	n := binary.LittleEndian.Uint64(lenBuf[:])
	if off+frameSize(n) > bodyLen {
		return nil, 0, fmt.Errorf("%w: block truncated", ErrCorrupt)
	}
	buf := make([]byte, n+4)
	if _, err := r.f.ReadAt(buf, int64(off+8)); err != nil {
		return nil, 0, fmt.Errorf("read %s: %w", r.path, err)
	}
	payload := buf[:n]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(buf[n:]) {
		return nil, 0, fmt.Errorf("%w: block checksum", ErrCorrupt)
	}
	return payload, off + frameSize(n), nil
}

// SetCache shares a block cache with the reader. Call during setup,
// before concurrent use. A nil cache (the default) disables caching.
func (r *Reader) SetCache(c *Cache) { r.cache = c }

// SetInjector wires a fault injector into the block-read path (the
// SegmentBlockPoison point). Call during setup, before concurrent use.
func (r *Reader) SetInjector(inj *faultinject.Injector) { r.inj = inj }

// Meta returns the run's header metadata.
func (r *Reader) Meta() Meta { return r.meta }

// Codes returns the run's leaf-index code plane (nil for delta runs).
// The caller must not modify the returned slice.
func (r *Reader) Codes() []uint64 { return r.codes }

// Starts returns the run's leaf-index start plane (nil for delta runs).
// The caller must not modify the returned slice.
func (r *Reader) Starts() []int32 { return r.starts }

// NumBlocks returns the number of entry blocks in the run.
func (r *Reader) NumBlocks() int { return len(r.index) }

// HasFilter reports whether the run carries a Morton-prefix filter
// (format version ≥ 3). Without one, MayContain and MayContainRange
// conservatively pass every probe.
func (r *Reader) HasFilter() bool { return r.filter != nil }

// MayContain reports whether the run could hold an entry with the
// given Morton code, consulting only the in-memory prefix filter —
// no block is fetched. False is definitive (never a false negative);
// true may be a false positive.
func (r *Reader) MayContain(code uint64) bool { return r.filter.mayContain(code) }

// MayContainRange reports whether the run could hold any entry with a
// code in the Z-interval [lo, hi], again from the in-memory filter
// alone. False is definitive; true may be a false positive.
func (r *Reader) MayContainRange(lo, hi uint64) bool { return r.filter.mayContainRange(lo, hi) }

// Block returns the decoded entries of entry block bi, consulting the
// cache first. On a checksum mismatch the block is re-read once — a
// poisoned buffer heals, real on-disk corruption does not — and only a
// second mismatch returns ErrCorrupt. Decoded entries are shared with
// the cache and must not be modified.
func (r *Reader) Block(bi int) ([]Entry, error) {
	if bi < 0 || bi >= len(r.index) {
		return nil, fmt.Errorf("segment: %s: entry block %d out of range [0, %d)", r.path, bi, len(r.index))
	}
	key := cacheKey{reader: r.id, block: bi}
	if es, ok := r.cache.get(key); ok {
		return es, nil
	}
	info := r.index[bi]
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		buf := make([]byte, frameSize(info.payLen))
		if _, err := r.f.ReadAt(buf, int64(info.off)); err != nil {
			return nil, fmt.Errorf("segment: read %s entry block %d: %w", r.path, bi, err)
		}
		if attempt == 0 && r.inj.Fire(faultinject.SegmentBlockPoison) {
			// Damage the in-flight buffer after it left the kernel: the
			// checksum below must catch it and force the re-read.
			buf[8+info.payLen/2] ^= 0xFF
		}
		if binary.LittleEndian.Uint64(buf[:8]) != info.payLen {
			lastErr = fmt.Errorf("%w: entry block %d length field disagrees with index", ErrCorrupt, bi)
			continue
		}
		payload := buf[8 : 8+info.payLen]
		if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(buf[8+info.payLen:]) {
			lastErr = fmt.Errorf("%w: entry block %d checksum", ErrCorrupt, bi)
			continue
		}
		es, err := decodeEntryBlock(payload, info)
		if err != nil {
			lastErr = fmt.Errorf("entry block %d: %w", bi, err)
			continue
		}
		r.cache.add(key, es, int64(info.payLen))
		return es, nil
	}
	return nil, fmt.Errorf("segment: %s: %w", r.path, lastErr)
}

// Find returns the entry with key (code, x, y) if the run contains one
// (tombstones included — the caller decides what a tombstone means),
// loading at most the one block whose code span covers the key.
func (r *Reader) Find(code uint64, x, y float64) (Entry, bool, error) {
	want := Entry{Code: code, X: x, Y: y}
	// First block that could hold the key: lastCode >= code.
	bi := sort.Search(len(r.index), func(i int) bool { return r.index[i].lastCode >= code })
	for ; bi < len(r.index) && r.index[bi].firstCode <= code; bi++ {
		es, err := r.Block(bi)
		if err != nil {
			return Entry{}, false, err
		}
		i := sort.Search(len(es), func(j int) bool { return !es[j].Less(want) })
		if i < len(es) && sameKey(es[i], want) {
			return es[i], true, nil
		}
	}
	return Entry{}, false, nil
}

// Close releases the file handle and evicts the reader's blocks from
// the shared cache. The reader must not be used after Close.
func (r *Reader) Close() error {
	r.cache.dropReader(r.id)
	return r.f.Close()
}

// CursorStats counts the work one cursor performed, the disk-path
// analogue of the in-memory scan's nodes-visited cost.
type CursorStats struct {
	// BlocksLoaded counts entry-block fetches through Reader.Block
	// (cache hits included — the unit is "block consulted").
	BlocksLoaded int
	// EntriesScanned counts entries yielded or skipped past.
	EntriesScanned int
}

// Cursor iterates a run's entries in key order, loading entry blocks
// one at a time. Not safe for concurrent use; a Reader may serve many
// cursors concurrently.
type Cursor struct {
	r     *Reader
	bi    int     // next block to load
	buf   []Entry // current block's entries
	pos   int     // next entry within buf
	stats CursorStats
}

// Cursor returns a new cursor positioned before the run's first entry.
func (r *Reader) Cursor() *Cursor { return &Cursor{r: r} }

// Next returns the next entry in key order, or ok=false at the end of
// the run.
func (c *Cursor) Next() (Entry, bool, error) {
	for c.pos >= len(c.buf) {
		if c.bi >= len(c.r.index) {
			return Entry{}, false, nil
		}
		es, err := c.r.Block(c.bi)
		if err != nil {
			return Entry{}, false, err
		}
		c.stats.BlocksLoaded++
		c.bi++
		c.buf, c.pos = es, 0
	}
	e := c.buf[c.pos]
	c.pos++
	c.stats.EntriesScanned++
	return e, true, nil
}

// SeekGE advances the cursor to the first entry with Code >= code and
// returns it (consuming it, exactly as Next would), skipping the blocks
// whose code span ends below code without loading them. Seeking
// backward is a no-op beyond the current position: the cursor only
// moves forward.
func (c *Cursor) SeekGE(code uint64) (Entry, bool, error) {
	// Skip whole blocks (beyond any already-loaded buffer) that end
	// below code.
	if c.pos >= len(c.buf) || c.buf[len(c.buf)-1].Code < code {
		c.buf, c.pos = nil, 0
		for c.bi < len(c.r.index) && c.r.index[c.bi].lastCode < code {
			c.bi++
		}
	}
	// Within the current (or next-loaded) buffer, binary-search the
	// first entry at or above code.
	for {
		if c.pos < len(c.buf) {
			i := c.pos + sort.Search(len(c.buf)-c.pos, func(j int) bool { return c.buf[c.pos+j].Code >= code })
			if i < len(c.buf) {
				c.stats.EntriesScanned++
				e := c.buf[i]
				c.pos = i + 1
				return e, true, nil
			}
		}
		if c.bi >= len(c.r.index) {
			return Entry{}, false, nil
		}
		es, err := c.r.Block(c.bi)
		if err != nil {
			return Entry{}, false, err
		}
		c.stats.BlocksLoaded++
		c.bi++
		c.buf, c.pos = es, 0
	}
}

// Stats returns the work counters accumulated so far.
func (c *Cursor) Stats() CursorStats { return c.stats }
