package segment

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"popana/internal/xrand"
)

// randomRun builds a sorted, strictly increasing entry slice with codes
// drawn uniformly from [0, codeSpace).
func randomRun(rng *xrand.Rand, n int, codeSpace uint64) []Entry {
	seen := make(map[uint64]bool, n)
	codes := make([]uint64, 0, n)
	for len(codes) < n {
		c := rng.Uint64() % codeSpace
		if !seen[c] {
			seen[c] = true
			codes = append(codes, c)
		}
	}
	sort.Slice(codes, func(i, j int) bool { return codes[i] < codes[j] })
	out := make([]Entry, n)
	for i, c := range codes {
		out[i] = Entry{Code: c, ID: uint64(i), X: float64(i), Y: float64(i), Payload: []byte{1}}
		if i%7 == 3 {
			out[i].Tombstone = true
			out[i].Payload = nil
		}
	}
	return out
}

// TestFilterNeverFalseNegative fuzzes seal/reopen round-trips over a
// spread of run sizes and code densities: the reopened run's filter
// must pass every Morton code the run actually contains (tombstones
// included), both as point probes and as degenerate range probes.
func TestFilterNeverFalseNegative(t *testing.T) {
	dir := t.TempDir()
	rng := xrand.New(31001)
	for trial := 0; trial < 40; trial++ {
		// Sweep densities: tiny exact-map runs (shift 0) through sparse
		// runs over a wide code space (large shifts). Keep the unique
		// codes well under the space so sampling terminates.
		codeSpace := uint64(1) << (4 + rng.Uint64()%45)
		n := 1 + int(rng.Uint64()%500)
		if max := int(codeSpace / 2); n > max {
			n = max
		}
		entries := randomRun(rng, n, codeSpace)
		path := filepath.Join(dir, "fnfuzz.seg")
		meta := sampleMeta()
		meta.Kind = Delta
		if err := Write(path, meta, nil, nil, entries, nil); err != nil {
			t.Fatal(err)
		}
		r, err := OpenReader(path)
		if err != nil {
			t.Fatal(err)
		}
		if !r.HasFilter() {
			t.Fatalf("trial %d: freshly sealed run has no filter", trial)
		}
		for _, e := range entries {
			if !r.MayContain(e.Code) {
				t.Fatalf("trial %d: filter rejected contained code %d (n=%d space=%d)",
					trial, e.Code, n, codeSpace)
			}
			if !r.MayContainRange(e.Code, e.Code) {
				t.Fatalf("trial %d: range filter rejected contained code %d", trial, e.Code)
			}
		}
		// Any interval covering a contained code must pass too.
		for i := 0; i < 50; i++ {
			e := entries[rng.Uint64()%uint64(len(entries))]
			lo := e.Code - rng.Uint64()%(e.Code+1)
			hi := e.Code + rng.Uint64()%1024
			if hi < e.Code { // wrapped
				hi = e.Code
			}
			if !r.MayContainRange(lo, hi) {
				t.Fatalf("trial %d: range [%d,%d] covering code %d rejected", trial, lo, hi, e.Code)
			}
		}
		r.Close()
	}
}

// TestFilterFalsePositiveRate measures the point-probe FP rate of the
// fixed 4096-bit budget on a uniform 4k-entry run over a 2^40 code
// space — the regime a full shard run lives in. Uniform misses should
// almost always land in an empty prefix quadrant: with 4096 entries
// spread over 4096 quadrants the occupied fraction is ≤ 1-1/e ≈ 63%,
// and the assertion only pins that the filter prunes *something*
// substantial rather than degenerating to all-ones.
func TestFilterFalsePositiveRate(t *testing.T) {
	rng := xrand.New(31002)
	const n = 4096
	const codeSpace = uint64(1) << 40
	entries := randomRun(rng, n, codeSpace)
	f := buildFilter(entries)
	contained := make(map[uint64]bool, n)
	for _, e := range entries {
		contained[e.Code] = true
	}
	misses, passes := 0, 0
	for i := 0; i < 100000; i++ {
		c := rng.Uint64() % codeSpace
		if contained[c] {
			continue
		}
		misses++
		if f.mayContain(c) {
			passes++
		}
	}
	rate := float64(passes) / float64(misses)
	t.Logf("FP rate at 4096-bit budget, %d entries over 2^40 codes: %.4f (%d/%d)",
		n, rate, passes, misses)
	if rate > 0.70 {
		t.Fatalf("FP rate %.4f exceeds 0.70: filter budget is not pruning", rate)
	}
}

func TestFilterEmptyAndBounds(t *testing.T) {
	f := buildFilter(nil)
	if f.mayContain(0) || f.mayContain(12345) {
		t.Fatal("empty-run filter passed a probe")
	}
	if f.mayContainRange(0, ^uint64(0)) {
		t.Fatal("empty-run filter passed a full-space range")
	}
	var nilF *prefixFilter
	if !nilF.mayContain(7) || !nilF.mayContainRange(3, 9) {
		t.Fatal("nil (pre-v3) filter must pass every probe")
	}
	f = buildFilter([]Entry{{Code: 100}, {Code: 4095}})
	if f.shift != 0 {
		t.Fatalf("shift = %d for max code 4095, want 0", f.shift)
	}
	if f.mayContainRange(9, 3) {
		t.Fatal("inverted range passed")
	}
	if f.mayContain(4096) || f.mayContainRange(4096, 1<<40) {
		t.Fatal("probe beyond the run's max code passed")
	}
	if !f.mayContainRange(0, 1<<40) {
		t.Fatal("covering range rejected")
	}
	f = buildFilter([]Entry{{Code: 4096}})
	if f.shift != 2 {
		t.Fatalf("shift = %d for max code 4096, want 2 (quad-aligned)", f.shift)
	}
}

func TestFilterEncodeDecodeRoundTrip(t *testing.T) {
	rng := xrand.New(31003)
	for trial := 0; trial < 10; trial++ {
		f := buildFilter(randomRun(rng, 200, uint64(1)<<30))
		g, err := decodeFilter(encodeFilter(f))
		if err != nil {
			t.Fatal(err)
		}
		if *g != *f {
			t.Fatalf("round-trip mismatch: shift %d vs %d", g.shift, f.shift)
		}
	}
	if _, err := decodeFilter(make([]byte, filterPayloadSize-1)); err == nil {
		t.Fatal("short filter payload accepted")
	}
}

// writeLegacyV2 seals a run in the pre-filter version-2 layout: same
// header fields with version byte 2, codes/starts/index blocks, entry
// blocks, footer — no filter block.
func writeLegacyV2(t *testing.T, path string, meta Meta, codes []uint64, starts []int32, entries []Entry) {
	t.Helper()
	meta.Entries = len(entries)
	meta.Leaves = 0
	if len(codes) > 0 {
		meta.Leaves = len(codes) - 1
	}
	chunks := splitEntryBlocks(entries)
	body := appendHeader(nil, meta)
	body[5] = 2 // rewrite the version byte and re-seal the header CRC
	binary.LittleEndian.PutUint32(body[headerSize-4:headerSize],
		crc32.Checksum(body[:headerSize-4], castagnoli))
	body = appendBlock(body, encodeCodes(codes))
	body = appendBlock(body, encodeStarts(starts))
	off := uint64(len(body)) + frameSize(uint64(indexRecSize*len(chunks)))
	index := make([]byte, 0, indexRecSize*len(chunks))
	payloads := make([][]byte, len(chunks))
	for i, ch := range chunks {
		p := encodeEntries(ch)
		payloads[i] = p
		index = binary.LittleEndian.AppendUint64(index, ch[0].Code)
		index = binary.LittleEndian.AppendUint64(index, ch[len(ch)-1].Code)
		index = binary.LittleEndian.AppendUint64(index, off)
		index = binary.LittleEndian.AppendUint64(index, uint64(len(p)))
		index = binary.LittleEndian.AppendUint32(index, uint32(len(ch)))
		off += frameSize(uint64(len(p)))
	}
	body = appendBlock(body, index)
	for _, p := range payloads {
		body = appendBlock(body, p)
	}
	var footer [footerSize]byte
	binary.LittleEndian.PutUint64(footer[0:8], uint64(len(body)))
	crc := crc32.Checksum(footer[0:8], castagnoli)
	crc = crc32.Update(crc, castagnoli, endMagic[:])
	binary.LittleEndian.PutUint32(footer[8:12], crc)
	copy(footer[12:20], endMagic[:])
	if err := os.WriteFile(path, append(body, footer[:]...), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestReadLegacyV2 proves version-2 run files (sealed before the
// filter block existed) still open through both Read and OpenReader,
// decode identically, and conservatively pass every filter probe.
func TestReadLegacyV2(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "legacy.seg")
	entries := sampleEntries(20)
	codes := []uint64{0, 7, 21, 70, 256}
	starts := []int32{0, 1, 3, 10, 20}
	writeLegacyV2(t, path, sampleMeta(), codes, starts, entries)

	run, err := Read(path)
	if err != nil {
		t.Fatalf("Read(v2): %v", err)
	}
	if len(run.Entries) != len(entries) || run.Meta.Leaves != len(codes)-1 {
		t.Fatalf("v2 decode: %d entries, %d leaves", len(run.Entries), run.Meta.Leaves)
	}
	r, err := OpenReader(path)
	if err != nil {
		t.Fatalf("OpenReader(v2): %v", err)
	}
	defer r.Close()
	if r.HasFilter() {
		t.Fatal("v2 run reports a filter")
	}
	if !r.MayContain(999999) || !r.MayContainRange(1<<40, 1<<41) {
		t.Fatal("filterless run must pass every probe")
	}
	for _, e := range entries {
		got, ok, err := r.Find(e.Code, e.X, e.Y)
		if err != nil || !ok || got.ID != e.ID {
			t.Fatalf("Find(v2) code %d: ok=%v err=%v", e.Code, ok, err)
		}
	}

	// An unknown future version must be rejected, not misparsed.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[5] = formatVersion + 1
	binary.LittleEndian.PutUint32(data[headerSize-4:headerSize],
		crc32.Checksum(data[:headerSize-4], castagnoli))
	future := filepath.Join(dir, "future.seg")
	if err := os.WriteFile(future, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(future); err == nil {
		t.Fatal("future-version run accepted")
	}
}
