package segment

// Cursor composition for the disk read path: a common EntryCursor
// interface over run cursors and in-memory slices, and a k-way merged
// cursor that collapses a shard's run stack plus its WAL-tail delta
// into one newest-wins, tombstone-free stream in key order — the
// streaming form of the slice-based Merge used by compaction.

import "sort"

// EntryCursor is a forward-only stream of entries in (code, x, y)
// order. Next yields the next entry; SeekGE jumps to and consumes the
// first entry with Code >= code (the BIGMIN jump target), never moving
// backward. Both report ok=false at end of stream.
type EntryCursor interface {
	Next() (Entry, bool, error)
	SeekGE(code uint64) (Entry, bool, error)
}

// SliceCursor adapts a sorted in-memory entry slice — a folded WAL
// tail, a test fixture — to the EntryCursor interface.
type SliceCursor struct {
	es  []Entry
	pos int
}

// NewSliceCursor returns a cursor over es, which must be sorted and
// strictly increasing under Less. The cursor aliases the slice.
func NewSliceCursor(es []Entry) *SliceCursor { return &SliceCursor{es: es} }

// Next returns the next entry, or ok=false at the end.
func (c *SliceCursor) Next() (Entry, bool, error) {
	if c.pos >= len(c.es) {
		return Entry{}, false, nil
	}
	e := c.es[c.pos]
	c.pos++
	return e, true, nil
}

// SeekGE advances to and consumes the first entry with Code >= code.
func (c *SliceCursor) SeekGE(code uint64) (Entry, bool, error) {
	c.pos += sort.Search(len(c.es)-c.pos, func(j int) bool { return c.es[c.pos+j].Code >= code })
	return c.Next()
}

// MergedCursor merges k cursors into one stream in key order with
// newest-wins deduplication: when several inputs hold the same
// (code, x, y) key, the entry from the latest-given cursor survives
// and the older ones are consumed silently; a surviving tombstone
// drops its key from the stream entirely. Queries therefore never see
// tombstones — only compaction (which rewrites runs) needs them, and
// it uses the slice-based Merge.
type MergedCursor struct {
	cursors []EntryCursor
	heads   []Entry
	ok      []bool
	primed  bool
	err     error
}

// NewMergedCursor merges the given cursors, which must be ordered
// oldest first (the newest source — a shard's WAL tail — last, matching
// Merge's convention). The merged cursor takes ownership of the inputs.
func NewMergedCursor(oldestFirst ...EntryCursor) *MergedCursor {
	return &MergedCursor{
		cursors: oldestFirst,
		heads:   make([]Entry, len(oldestFirst)),
		ok:      make([]bool, len(oldestFirst)),
	}
}

// prime loads the first entry of every input.
func (m *MergedCursor) prime() error {
	m.primed = true
	for i, c := range m.cursors {
		e, ok, err := c.Next()
		if err != nil {
			m.err = err
			return err
		}
		m.heads[i], m.ok[i] = e, ok
	}
	return nil
}

// step returns the next surviving entry, tombstones included (Next and
// SeekGE filter them).
func (m *MergedCursor) step() (Entry, bool, error) {
	if m.err != nil {
		return Entry{}, false, m.err
	}
	if !m.primed {
		if err := m.prime(); err != nil {
			return Entry{}, false, err
		}
	}
	// Pick the smallest key; among equal keys the newest input (highest
	// index) supplies the surviving entry.
	best := -1
	for i := range m.cursors {
		if !m.ok[i] {
			continue
		}
		switch {
		case best < 0:
			best = i
		case m.heads[i].Less(m.heads[best]):
			best = i
		case sameKey(m.heads[i], m.heads[best]):
			best = i // i > best: newer input wins
		}
	}
	if best < 0 {
		return Entry{}, false, nil
	}
	win := m.heads[best]
	// Advance every input sitting on the winning key.
	for i := range m.cursors {
		if !m.ok[i] || !sameKey(m.heads[i], win) {
			continue
		}
		e, ok, err := m.cursors[i].Next()
		if err != nil {
			m.err = err
			return Entry{}, false, err
		}
		m.heads[i], m.ok[i] = e, ok
	}
	return win, true, nil
}

// Next returns the next live entry in key order, or ok=false at the
// end of the merged stream.
func (m *MergedCursor) Next() (Entry, bool, error) {
	for {
		e, ok, err := m.step()
		if err != nil || !ok {
			return Entry{}, false, err
		}
		if !e.Tombstone {
			return e, true, nil
		}
	}
}

// SeekGE jumps every input to the first entry with Code >= code, then
// returns the first live merged entry from there. Like the underlying
// cursors it only moves forward.
func (m *MergedCursor) SeekGE(code uint64) (Entry, bool, error) {
	if m.err != nil {
		return Entry{}, false, m.err
	}
	if !m.primed {
		m.primed = true
		for i := range m.heads {
			m.ok[i] = false // seeded by the seek below
		}
		for i, c := range m.cursors {
			e, ok, err := c.SeekGE(code)
			if err != nil {
				m.err = err
				return Entry{}, false, err
			}
			m.heads[i], m.ok[i] = e, ok
		}
		return m.Next()
	}
	for i, c := range m.cursors {
		if m.ok[i] && m.heads[i].Code >= code {
			continue // already at or past the target
		}
		if !m.ok[i] {
			continue // exhausted
		}
		e, ok, err := c.SeekGE(code)
		if err != nil {
			m.err = err
			return Entry{}, false, err
		}
		m.heads[i], m.ok[i] = e, ok
	}
	return m.Next()
}
