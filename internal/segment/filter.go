package segment

import "fmt"

// The run filter: a fixed-budget membership summary over the Morton
// codes a sealed run contains, consulted by the lazy read path before
// any cursor or block fetch so point and small-range probes skip runs
// that cannot hold them.
//
// The design is a prefix bitset, not a hashed Bloom filter: Morton
// codes at a fixed canonical depth are already a hierarchy of quadrant
// prefixes, so truncating every code by a run-specific shift maps it
// onto at most filterBits distinct quadrants, and one bit per quadrant
// records occupancy exactly at that granularity. The result is
// never-false-negative by construction (a code the run contains always
// sets its own prefix bit) and — unlike a hash filter — supports range
// probes: a contiguous Z-interval [zmin, zmax] truncates to the
// contiguous prefix interval [zmin>>shift, zmax>>shift], so one bitset
// scan answers "could any entry of this run fall in the interval?".
//
// The shift is chosen per run as the smallest even value that fits the
// run's largest code in filterBits prefixes; even so that truncation
// stays quadrant-aligned (each Morton level is two bits). Small runs —
// the common case for WAL-tail deltas — get shift 0 and an exact
// membership map; a full run over a 2^24-code shard keeps its top six
// quadrant levels. The budget is fixed at 513 encoded bytes so a
// thousand-run stack costs half a megabyte of filters.

const (
	// filterBits is the fixed prefix-bitset budget: 4096 bits = 512
	// bytes, six quadrant levels of resolution.
	filterBits  = 4096
	filterWords = filterBits / 64
	// filterPayloadSize is the encoded size: shift byte + bitset.
	filterPayloadSize = 1 + filterBits/8
)

// prefixFilter is the decoded run filter. A nil *prefixFilter (runs
// sealed before format v3) means "no information": every probe passes.
type prefixFilter struct {
	shift uint8
	bits  [filterWords]uint64
}

// buildFilter summarizes a sorted entry slice. Tombstones count as
// members: a tombstone is exactly what a point probe must find.
func buildFilter(entries []Entry) *prefixFilter {
	f := &prefixFilter{}
	if len(entries) == 0 {
		return f // all-zero bitset: correctly rejects every probe
	}
	maxCode := entries[len(entries)-1].Code
	for maxCode>>f.shift >= filterBits {
		f.shift += 2
	}
	for i := range entries {
		p := entries[i].Code >> f.shift
		f.bits[p/64] |= 1 << (p % 64)
	}
	return f
}

// mayContain reports whether the run could hold an entry with the
// given Morton code. False is definitive; true may be a false positive
// (another entry shares the prefix quadrant).
func (f *prefixFilter) mayContain(code uint64) bool {
	if f == nil {
		return true
	}
	p := code >> f.shift
	if p >= filterBits {
		// Beyond the run's largest code by construction of shift.
		return false
	}
	return f.bits[p/64]&(1<<(p%64)) != 0
}

// mayContainRange reports whether the run could hold any entry with a
// code in [lo, hi]. The prefix interval is contiguous because shifting
// is monotone, so a word-wise bitset scan decides it.
func (f *prefixFilter) mayContainRange(lo, hi uint64) bool {
	if f == nil {
		return true
	}
	if hi < lo {
		return false
	}
	plo := lo >> f.shift
	if plo >= filterBits {
		return false
	}
	phi := hi >> f.shift
	if phi >= filterBits {
		phi = filterBits - 1
	}
	wlo, whi := plo/64, phi/64
	if wlo == whi {
		mask := (^uint64(0) << (plo % 64)) & (^uint64(0) >> (63 - phi%64))
		return f.bits[wlo]&mask != 0
	}
	if f.bits[wlo]&(^uint64(0)<<(plo%64)) != 0 {
		return true
	}
	for w := wlo + 1; w < whi; w++ {
		if f.bits[w] != 0 {
			return true
		}
	}
	return f.bits[whi]&(^uint64(0)>>(63-phi%64)) != 0
}

// encodeFilter serializes a filter into its fixed-size block payload.
func encodeFilter(f *prefixFilter) []byte {
	b := make([]byte, filterPayloadSize)
	b[0] = f.shift
	for i, w := range f.bits {
		for j := 0; j < 8; j++ {
			b[1+8*i+j] = byte(w >> (8 * j))
		}
	}
	return b
}

// decodeFilter parses a filter block payload.
func decodeFilter(b []byte) (*prefixFilter, error) {
	if len(b) != filterPayloadSize {
		return nil, fmt.Errorf("%w: filter block is %d bytes, want %d", ErrCorrupt, len(b), filterPayloadSize)
	}
	f := &prefixFilter{shift: b[0]}
	for i := range f.bits {
		var w uint64
		for j := 7; j >= 0; j-- {
			w = w<<8 | uint64(b[1+8*i+j])
		}
		f.bits[i] = w
	}
	return f, nil
}
