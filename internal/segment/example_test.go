package segment_test

import (
	"fmt"
	"os"
	"path/filepath"

	"popana/internal/geom"
	"popana/internal/segment"
)

// ExampleOpenReader seals a small delta run and reads it back
// block-by-block with a cursor — the disk-resident path spatialdb uses
// to serve queries from sealed runs without loading them into memory.
func ExampleOpenReader() {
	dir, err := os.MkdirTemp("", "segment-example")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	entries := []segment.Entry{
		{Code: 3, ID: 1, X: 0.10, Y: 0.20, Payload: []byte("a")},
		{Code: 9, ID: 2, X: 0.60, Y: 0.25, Payload: []byte("b")},
		{Code: 14, ID: 3, X: 0.80, Y: 0.90, Payload: []byte("c")},
	}
	meta := segment.Meta{
		Kind:   segment.Delta,
		Shard:  0,
		Seq:    1,
		Region: geom.Rect{MaxX: 1, MaxY: 1},
	}
	path := filepath.Join(dir, "run-0-000000001.seg")
	if err := segment.Write(path, meta, nil, nil, entries, nil); err != nil {
		panic(err)
	}

	r, err := segment.OpenReader(path)
	if err != nil {
		panic(err)
	}
	defer r.Close()

	cur := r.Cursor()
	for {
		e, ok, err := cur.Next()
		if err != nil {
			panic(err)
		}
		if !ok {
			break
		}
		fmt.Printf("code=%d id=%d payload=%s\n", e.Code, e.ID, e.Payload)
	}
	// Output:
	// code=3 id=1 payload=a
	// code=9 id=2 payload=b
	// code=14 id=3 payload=c
}

// ExampleNewMergedCursor merges a sealed run with a newer in-memory
// delta: the newer value for a shared key wins and a tombstone deletes
// its key, exactly the view a query over a shard's run stack sees.
func ExampleNewMergedCursor() {
	older := segment.NewSliceCursor([]segment.Entry{
		{Code: 3, ID: 1, X: 0.1, Y: 0.2, Payload: []byte("old")},
		{Code: 9, ID: 2, X: 0.6, Y: 0.2, Payload: []byte("keep")},
	})
	newer := segment.NewSliceCursor([]segment.Entry{
		{Code: 3, ID: 7, X: 0.1, Y: 0.2, Payload: []byte("new")}, // same key: wins
		{Code: 12, ID: 3, X: 0.7, Y: 0.8, Tombstone: true},
	})
	m := segment.NewMergedCursor(older, newer)
	for {
		e, ok, err := m.Next()
		if err != nil {
			panic(err)
		}
		if !ok {
			break
		}
		fmt.Printf("code=%d id=%d payload=%s\n", e.Code, e.ID, e.Payload)
	}
	// Output:
	// code=3 id=7 payload=new
	// code=9 id=2 payload=keep
}

// ExampleCursor_SeekGE shows the BIGMIN-style jump a range query uses:
// instead of scanning every entry, the cursor skips whole blocks whose
// Morton-code span ends below the jump target.
func ExampleCursor_SeekGE() {
	dir, err := os.MkdirTemp("", "segment-example")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	var entries []segment.Entry
	for i := 0; i < 2000; i++ {
		entries = append(entries, segment.Entry{
			Code: uint64(i) * 2, ID: uint64(i), X: float64(i), Y: 0,
			Payload: []byte("xxxxxxxxxxxxxxxx"),
		})
	}
	path := filepath.Join(dir, "run-0-000000001.seg")
	meta := segment.Meta{Kind: segment.Delta, Region: geom.Rect{MaxX: 4000, MaxY: 1}}
	if err := segment.Write(path, meta, nil, nil, entries, nil); err != nil {
		panic(err)
	}
	r, err := segment.OpenReader(path)
	if err != nil {
		panic(err)
	}
	defer r.Close()

	cur := r.Cursor()
	e, ok, err := cur.SeekGE(3001) // codes are even: lands on 3002
	if err != nil || !ok {
		panic(err)
	}
	st := cur.Stats()
	fmt.Printf("landed on code=%d, loaded %d of %d blocks\n", e.Code, st.BlocksLoaded, r.NumBlocks())
	// Output:
	// landed on code=3002, loaded 1 of 26 blocks
}
