// Package segment reads and writes sealed, immutable Morton run files —
// the durable form of a linearquad.Frozen snapshot and of the WAL-tail
// deltas layered on top of it.
//
// A run is a sorted sequence of entries, each keyed by (code, x, y):
// the entry's Morton cell code at a fixed canonical depth, tie-broken
// by the exact coordinates (locations are unique within a shard, so the
// key is too). Full runs additionally carry the frozen snapshot's leaf
// index (codes and starts planes), so a cleanly closed table can
// republish its lock-free snapshots on reopen without re-freezing.
// Delta runs carry only entries, some of which are tombstones.
//
// # File format (version 3)
//
//	header (76 bytes)
//	  magic    "PQSEG" + version 3     6 bytes
//	  kind     full=1 delta=2          1 byte
//	  pad                              1 byte
//	  shard    uint32                  4 bytes
//	  seq      uint64                  8 bytes
//	  region   4 × float64            32 bytes
//	  depth    uint32                  4 bytes   (leaf-index grid depth)
//	  leaves   uint64                  8 bytes   (0 for delta runs)
//	  entries  uint64                  8 bytes
//	  crc      CRC-32C of the above    4 bytes
//	blocks, each framed:  length uint64 | payload | CRC-32C uint32
//	  block 0   codes  (leaves+1 × uint64; empty for delta runs)
//	  block 1   starts (leaves+1 × int32;  empty for delta runs)
//	  block 2   entry-block index: one 36-byte record per entry block
//	            (firstCode u64 | lastCode u64 | off u64 | paylen u64 |
//	            count u32), off being the absolute file offset of that
//	            block's frame
//	  block 3   Morton-prefix filter (513 bytes: shift u8 | 4096-bit
//	            prefix bitset; version ≥ 3 only — see filter.go)
//	  blocks 4+ entry blocks: consecutive slices of the sorted entry
//	            array (see Entry encoding), each targeting
//	            TargetBlockBytes of payload
//	footer (20 bytes)
//	  body     uint64 total bytes of header+blocks
//	  crc      CRC-32C of body field + magic
//	  magic    "PQSEGEND"              8 bytes
//
// Version 1 stored all entries in a single monolithic block; version 2
// splits them into independently checksummed, independently fetchable
// entry blocks so a Reader can serve a point or range query by loading
// only the blocks whose [firstCode, lastCode] span intersects the
// query's Z-interval. The index block is small (36 bytes per ~4 KiB of
// entries) and is held in memory by every open Reader; entry blocks
// are fetched on demand with ReadAt and admitted to an optional Cache
// only after their checksum verifies. Version 3 appends a fixed-budget
// Morton-prefix membership filter after the index so the lazy read
// path can skip runs that cannot contain a probe without touching a
// single entry block; version-2 files still open (they simply carry no
// filter, which reads as "every probe passes").
//
// # Torn vs corrupt
//
// The footer is the write-completion marker: it is written last, after
// the blocks are flushed. A file without a valid footer is *torn* — a
// flush that never completed — and recovery discards it when it is the
// newest run of its shard (the WAL it would have covered was, by the
// flush ordering, not yet truncated). A file whose footer is valid but
// whose header or block checksums fail is *corrupt* — it was once
// durable and has since been damaged — and reading it returns
// ErrCorrupt so the caller can fail loudly instead of silently serving
// a hole. ErrTorn and ErrCorrupt are both wrapped by every path that
// rejects a file.
package segment

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"popana/internal/faultinject"
	"popana/internal/geom"
)

// Kind distinguishes full-state runs from WAL-tail delta runs.
type Kind uint8

const (
	// Full marks a run holding a shard's complete state: every older
	// run of that shard is superseded.
	Full Kind = 1
	// Delta marks a run holding only the mutations since the previous
	// run, tombstones included.
	Delta Kind = 2
)

// ErrTorn marks a run file whose write never completed (no valid
// footer): discardable when it is the newest run of its shard.
var ErrTorn = errors.New("segment: torn run (incomplete write)")

// ErrCorrupt marks a run file that completed (valid footer) but whose
// header or block checksums no longer match: data loss, fail loudly.
var ErrCorrupt = errors.New("segment: corrupt run (checksum mismatch)")

var (
	magicPrefix = [5]byte{'P', 'Q', 'S', 'E', 'G'}
	endMagic    = [8]byte{'P', 'Q', 'S', 'E', 'G', 'E', 'N', 'D'}
)

const (
	// formatVersion is the version new runs are sealed with.
	formatVersion = 3
	// minReadVersion is the oldest version Read/OpenReader accept:
	// version-2 files (no filter block) remain fully readable.
	minReadVersion = 2
)

const (
	headerSize = 76
	footerSize = 20
	// indexRecSize is the encoded size of one entry-block index record.
	indexRecSize = 36
)

// TargetBlockBytes is the payload size an entry block aims for: entries
// are packed into a block until its encoded payload reaches this many
// bytes (a block always holds at least one entry, so oversized payloads
// get a block of their own). 4 KiB aligns a block with the page size
// the occupancy analysis models, keeps the per-run index tiny, and
// makes one block the natural cache and checksum unit.
const TargetBlockBytes = 4096

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Entry is one record (or tombstone) of a run, keyed by (Code, X, Y).
// Payload is an opaque value encoding owned by the caller; it is empty
// for tombstones.
type Entry struct {
	Code      uint64
	ID        uint64
	X, Y      float64
	Tombstone bool
	Payload   []byte
}

// Key ordering: code first, then exact coordinates. Entries within a
// run must be strictly increasing under Less.
func (e Entry) Less(o Entry) bool {
	if e.Code != o.Code {
		return e.Code < o.Code
	}
	if e.X != o.X {
		return e.X < o.X
	}
	return e.Y < o.Y
}

// sameKey reports whether two entries name the same location.
func sameKey(a, b Entry) bool { return a.Code == b.Code && a.X == b.X && a.Y == b.Y }

// Meta describes a run file.
type Meta struct {
	Kind    Kind
	Shard   uint32
	Seq     uint64
	Region  geom.Rect
	Depth   int // leaf-index grid depth (full runs with a leaf index)
	Leaves  int // leaf count of the frozen snapshot; 0 for delta runs
	Entries int
}

// Run is a fully decoded run file.
type Run struct {
	Meta    Meta
	Codes   []uint64 // leaf index, nil for delta runs
	Starts  []int32  // leaf index, nil for delta runs
	Entries []Entry
}

// Write seals a run at path: the file is written to a temporary name,
// synced, renamed into place, and the directory synced, so a crash
// leaves either no file or a complete one under the final name (a torn
// temporary is ignored by recovery's directory scan). The injector's
// SegmentPartialFlush and SegmentCorruption points simulate crashes
// mid-write; on any failure the temporary file is left for diagnosis
// but never takes the final name... except under injection, where the
// damaged file IS renamed into place so recovery must prove it rejects
// it the way it would a real torn flush.
func Write(path string, meta Meta, codes []uint64, starts []int32, entries []Entry, inj *faultinject.Injector) error {
	if meta.Entries != len(entries) {
		meta.Entries = len(entries)
	}
	meta.Leaves = 0
	if len(codes) > 0 {
		meta.Leaves = len(codes) - 1
	}
	chunks := splitEntryBlocks(entries)
	filter := encodeFilter(buildFilter(entries))
	body := appendHeader(nil, meta)
	body = appendBlock(body, encodeCodes(codes))
	body = appendBlock(body, encodeStarts(starts))
	// The index and filter frames' sizes depend only on the number of
	// entry blocks (the filter is fixed-size), so every block's absolute
	// offset is known before anything is written.
	off := uint64(len(body)) +
		frameSize(uint64(indexRecSize*len(chunks))) +
		frameSize(uint64(len(filter)))
	index := make([]byte, 0, indexRecSize*len(chunks))
	payloads := make([][]byte, len(chunks))
	for i, ch := range chunks {
		p := encodeEntries(ch)
		payloads[i] = p
		index = binary.LittleEndian.AppendUint64(index, ch[0].Code)
		index = binary.LittleEndian.AppendUint64(index, ch[len(ch)-1].Code)
		index = binary.LittleEndian.AppendUint64(index, off)
		index = binary.LittleEndian.AppendUint64(index, uint64(len(p)))
		index = binary.LittleEndian.AppendUint32(index, uint32(len(ch)))
		off += frameSize(uint64(len(p)))
	}
	body = appendBlock(body, index)
	body = appendBlock(body, filter)
	for _, p := range payloads {
		body = appendBlock(body, p)
	}

	switch {
	case inj.Fire(faultinject.SegmentPartialFlush):
		// Crash mid-flush: a prefix of the blocks reaches the file, no
		// footer. The torn file lands under the final name.
		if err := WriteAtomic(path, body[:len(body)/2]); err != nil {
			return err
		}
		return fmt.Errorf("segment: write %s: %w at %s", path, faultinject.ErrInjected, faultinject.SegmentPartialFlush)
	case inj.Fire(faultinject.SegmentCorruption):
		// Garbage reaches the platter during the crash: a block byte is
		// damaged after its checksum was computed and the footer is never
		// written, so recovery must reject the file by checksum.
		damaged := append([]byte(nil), body...)
		damaged[len(damaged)-1] ^= 0xFF
		if err := WriteAtomic(path, damaged); err != nil {
			return err
		}
		return fmt.Errorf("segment: write %s: %w at %s", path, faultinject.ErrInjected, faultinject.SegmentCorruption)
	}

	var footer [footerSize]byte
	binary.LittleEndian.PutUint64(footer[0:8], uint64(len(body)))
	crc := crc32.Checksum(footer[0:8], castagnoli)
	crc = crc32.Update(crc, castagnoli, endMagic[:])
	binary.LittleEndian.PutUint32(footer[8:12], crc)
	copy(footer[12:20], endMagic[:])
	return WriteAtomic(path, append(body, footer[:]...))
}

// WriteAtomic writes data to path via temp-file, fsync, rename,
// dir-fsync: after a crash the final name holds either the previous
// contents or all of data, never a prefix. The durable layer reuses it
// for every small metadata file that must flip atomically (manifests).
func WriteAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("segment: temp for %s: %w", path, err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("segment: write %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("segment: sync %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("segment: close %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("segment: rename %s: %w", path, err)
	}
	return SyncDir(dir)
}

// SyncDir fsyncs a directory so renames and removals within it are
// durable.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("segment: open dir %s: %w", dir, err)
	}
	err = d.Sync()
	cerr := d.Close()
	if err != nil {
		return fmt.Errorf("segment: sync dir %s: %w", dir, err)
	}
	return cerr
}

// Read decodes the run at path, validating the footer, header, and
// every block checksum. A missing or invalid footer returns ErrTorn; a
// valid footer with any checksum mismatch returns ErrCorrupt.
func Read(path string) (*Run, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("segment: read %s: %w", path, err)
	}
	if len(data) < footerSize {
		return nil, fmt.Errorf("segment: %s: %w: %d bytes", path, ErrTorn, len(data))
	}
	footer := data[len(data)-footerSize:]
	if [8]byte(footer[12:20]) != endMagic {
		return nil, fmt.Errorf("segment: %s: %w: no footer magic", path, ErrTorn)
	}
	crc := crc32.Checksum(footer[0:8], castagnoli)
	crc = crc32.Update(crc, castagnoli, endMagic[:])
	if binary.LittleEndian.Uint32(footer[8:12]) != crc {
		return nil, fmt.Errorf("segment: %s: %w: footer checksum", path, ErrTorn)
	}
	bodyLen := binary.LittleEndian.Uint64(footer[0:8])
	if bodyLen != uint64(len(data)-footerSize) {
		return nil, fmt.Errorf("segment: %s: %w: footer covers %d bytes, file body is %d",
			path, ErrCorrupt, bodyLen, len(data)-footerSize)
	}
	body := data[:len(data)-footerSize]
	meta, version, rest, err := readHeader(body)
	if err != nil {
		return nil, fmt.Errorf("segment: %s: %w", path, err)
	}
	blocks := make([][]byte, numMetaBlocks(version))
	for i := range blocks {
		blocks[i], rest, err = readBlock(rest)
		if err != nil {
			return nil, fmt.Errorf("segment: %s: block %d: %w", path, i, err)
		}
	}
	if version >= 3 {
		// Validate the filter block even though Run does not carry it:
		// a decoded Run is the recovery path's full-fidelity view, and a
		// damaged filter must fail as loudly as a damaged entry block.
		if _, err := decodeFilter(blocks[3]); err != nil {
			return nil, fmt.Errorf("segment: %s: %w", path, err)
		}
	}
	r := &Run{Meta: meta}
	if r.Codes, err = decodeCodes(blocks[0], meta.Leaves); err != nil {
		return nil, fmt.Errorf("segment: %s: %w", path, err)
	}
	if r.Starts, err = decodeStarts(blocks[1], meta.Leaves); err != nil {
		return nil, fmt.Errorf("segment: %s: %w", path, err)
	}
	index, err := decodeIndex(blocks[2])
	if err != nil {
		return nil, fmt.Errorf("segment: %s: %w", path, err)
	}
	r.Entries = make([]Entry, 0, meta.Entries)
	for bi := range index {
		pos := uint64(len(body) - len(rest))
		if index[bi].off != pos {
			return nil, fmt.Errorf("segment: %s: %w: entry block %d at offset %d, index says %d",
				path, ErrCorrupt, bi, pos, index[bi].off)
		}
		var payload []byte
		payload, rest, err = readBlock(rest)
		if err != nil {
			return nil, fmt.Errorf("segment: %s: entry block %d: %w", path, bi, err)
		}
		es, err := decodeEntryBlock(payload, index[bi])
		if err != nil {
			return nil, fmt.Errorf("segment: %s: entry block %d: %w", path, bi, err)
		}
		r.Entries = append(r.Entries, es...)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("segment: %s: %w: %d trailing bytes", path, ErrCorrupt, len(rest))
	}
	if len(r.Entries) != meta.Entries {
		return nil, fmt.Errorf("segment: %s: %w: %d entries decoded, header says %d",
			path, ErrCorrupt, len(r.Entries), meta.Entries)
	}
	for i := 1; i < len(r.Entries); i++ {
		if !r.Entries[i-1].Less(r.Entries[i]) {
			return nil, fmt.Errorf("segment: %s: %w: entries out of key order at %d", path, ErrCorrupt, i)
		}
	}
	return r, nil
}

// Merge k-way-merges runs in (code, x, y) order into a single entry
// slice: runs must be given oldest first; on a shared key the entry
// from the newest run wins, and a winning tombstone drops the key
// entirely. The inputs must each be sorted and strictly increasing
// under Less (as Read guarantees).
func Merge(runs ...[]Entry) []Entry {
	switch len(runs) {
	case 0:
		return nil
	case 1:
		return compactTombstones(runs[0])
	}
	total := 0
	cursors := make([]int, len(runs))
	for _, r := range runs {
		total += len(r)
	}
	out := make([]Entry, 0, total)
	for {
		// Pick the smallest key among the cursors; among equal keys the
		// newest run (highest index) supplies the surviving entry.
		best := -1
		for i, r := range runs {
			if cursors[i] >= len(r) {
				continue
			}
			switch {
			case best < 0:
				best = i
			case r[cursors[i]].Less(runs[best][cursors[best]]):
				best = i
			case sameKey(r[cursors[i]], runs[best][cursors[best]]):
				best = i // i > best: newer run wins
			}
		}
		if best < 0 {
			return out
		}
		win := runs[best][cursors[best]]
		// Advance every cursor sitting on the winning key.
		for i, r := range runs {
			if cursors[i] < len(r) && sameKey(r[cursors[i]], win) {
				cursors[i]++
			}
		}
		if !win.Tombstone {
			out = append(out, win)
		}
	}
}

// compactTombstones strips tombstones from a single sorted run.
func compactTombstones(run []Entry) []Entry {
	out := make([]Entry, 0, len(run))
	for _, e := range run {
		if !e.Tombstone {
			out = append(out, e)
		}
	}
	return out
}

// --- header ---

func appendHeader(b []byte, m Meta) []byte {
	start := len(b)
	b = append(b, magicPrefix[:]...)
	b = append(b, formatVersion)
	b = append(b, byte(m.Kind), 0)
	b = binary.LittleEndian.AppendUint32(b, m.Shard)
	b = binary.LittleEndian.AppendUint64(b, m.Seq)
	for _, f := range [4]float64{m.Region.MinX, m.Region.MinY, m.Region.MaxX, m.Region.MaxY} {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(m.Depth))
	b = binary.LittleEndian.AppendUint64(b, uint64(m.Leaves))
	b = binary.LittleEndian.AppendUint64(b, uint64(m.Entries))
	return binary.LittleEndian.AppendUint32(b, crc32.Checksum(b[start:], castagnoli))
}

// readHeader decodes and validates the fixed header, returning the
// run's metadata, its format version (needed to know whether a filter
// block follows the index), and the bytes past the header.
func readHeader(b []byte) (Meta, int, []byte, error) {
	if len(b) < headerSize {
		return Meta{}, 0, nil, fmt.Errorf("%w: header truncated", ErrCorrupt)
	}
	h := b[:headerSize]
	if [5]byte(h[0:5]) != magicPrefix {
		return Meta{}, 0, nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	version := int(h[5])
	if version < minReadVersion || version > formatVersion {
		return Meta{}, 0, nil, fmt.Errorf("%w: unsupported format version %d", ErrCorrupt, version)
	}
	if crc32.Checksum(h[:headerSize-4], castagnoli) != binary.LittleEndian.Uint32(h[headerSize-4:]) {
		return Meta{}, 0, nil, fmt.Errorf("%w: header checksum", ErrCorrupt)
	}
	m := Meta{Kind: Kind(h[6]), Shard: binary.LittleEndian.Uint32(h[8:12]), Seq: binary.LittleEndian.Uint64(h[12:20])}
	if m.Kind != Full && m.Kind != Delta {
		return Meta{}, 0, nil, fmt.Errorf("%w: unknown run kind %d", ErrCorrupt, h[6])
	}
	m.Region = geom.Rect{
		MinX: math.Float64frombits(binary.LittleEndian.Uint64(h[20:28])),
		MinY: math.Float64frombits(binary.LittleEndian.Uint64(h[28:36])),
		MaxX: math.Float64frombits(binary.LittleEndian.Uint64(h[36:44])),
		MaxY: math.Float64frombits(binary.LittleEndian.Uint64(h[44:52])),
	}
	m.Depth = int(binary.LittleEndian.Uint32(h[52:56]))
	m.Leaves = int(binary.LittleEndian.Uint64(h[56:64]))
	m.Entries = int(binary.LittleEndian.Uint64(h[64:72]))
	return m, version, b[headerSize:], nil
}

// numMetaBlocks returns how many metadata blocks precede the entry
// blocks for a given format version: codes, starts, index, and (v3+)
// the Morton-prefix filter.
func numMetaBlocks(version int) int {
	if version >= 3 {
		return 4
	}
	return 3
}

// --- blocks ---

func appendBlock(b, payload []byte) []byte {
	b = binary.LittleEndian.AppendUint64(b, uint64(len(payload)))
	b = append(b, payload...)
	return binary.LittleEndian.AppendUint32(b, crc32.Checksum(payload, castagnoli))
}

func readBlock(b []byte) (payload, rest []byte, err error) {
	if len(b) < 8 {
		return nil, nil, fmt.Errorf("%w: block length truncated", ErrCorrupt)
	}
	n := binary.LittleEndian.Uint64(b[:8])
	if uint64(len(b)) < 8+n+4 {
		return nil, nil, fmt.Errorf("%w: block truncated", ErrCorrupt)
	}
	payload = b[8 : 8+n]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(b[8+n:8+n+4]) {
		return nil, nil, fmt.Errorf("%w: block checksum", ErrCorrupt)
	}
	return payload, b[8+n+4:], nil
}

// frameSize returns the on-disk size of a block frame holding a
// payload of n bytes: length prefix + payload + checksum.
func frameSize(n uint64) uint64 { return 8 + n + 4 }

// blockInfo is one decoded entry-block index record: the Z-code span
// of the block's entries, the absolute file offset of its frame, the
// frame's payload length, and the entry count.
type blockInfo struct {
	firstCode, lastCode uint64
	off, payLen         uint64
	count               int
}

// splitEntryBlocks slices the sorted entry array into consecutive
// chunks whose encoded payloads target TargetBlockBytes each. Every
// chunk holds at least one entry; the slices alias the input.
func splitEntryBlocks(entries []Entry) [][]Entry {
	var chunks [][]Entry
	start, size := 0, 0
	for i := range entries {
		sz := encodedEntrySize(entries[i])
		if size > 0 && size+sz > TargetBlockBytes {
			chunks = append(chunks, entries[start:i])
			start, size = i, 0
		}
		size += sz
	}
	if start < len(entries) {
		chunks = append(chunks, entries[start:])
	}
	return chunks
}

// encodedEntrySize returns the encoded byte size of one entry.
func encodedEntrySize(e Entry) int {
	if e.Tombstone {
		return 33
	}
	return 33 + 4 + len(e.Payload)
}

// decodeIndex decodes the entry-block index payload.
func decodeIndex(b []byte) ([]blockInfo, error) {
	if len(b)%indexRecSize != 0 {
		return nil, fmt.Errorf("%w: entry-block index is %d bytes (not a multiple of %d)",
			ErrCorrupt, len(b), indexRecSize)
	}
	out := make([]blockInfo, len(b)/indexRecSize)
	for i := range out {
		r := b[i*indexRecSize:]
		out[i] = blockInfo{
			firstCode: binary.LittleEndian.Uint64(r[0:8]),
			lastCode:  binary.LittleEndian.Uint64(r[8:16]),
			off:       binary.LittleEndian.Uint64(r[16:24]),
			payLen:    binary.LittleEndian.Uint64(r[24:32]),
			count:     int(binary.LittleEndian.Uint32(r[32:36])),
		}
	}
	return out, nil
}

// decodeEntryBlock decodes one entry block's payload and cross-checks
// it against its index record: payload length, entry count, strict key
// order within the block, and the indexed [firstCode, lastCode] span.
func decodeEntryBlock(payload []byte, info blockInfo) ([]Entry, error) {
	if uint64(len(payload)) != info.payLen {
		return nil, fmt.Errorf("%w: entry block payload is %d bytes, index says %d",
			ErrCorrupt, len(payload), info.payLen)
	}
	es, err := decodeEntries(payload, info.count)
	if err != nil {
		return nil, err
	}
	for i := 1; i < len(es); i++ {
		if !es[i-1].Less(es[i]) {
			return nil, fmt.Errorf("%w: entries out of key order at %d", ErrCorrupt, i)
		}
	}
	if len(es) > 0 && (es[0].Code != info.firstCode || es[len(es)-1].Code != info.lastCode) {
		return nil, fmt.Errorf("%w: entry block spans codes [%d, %d], index says [%d, %d]",
			ErrCorrupt, es[0].Code, es[len(es)-1].Code, info.firstCode, info.lastCode)
	}
	return es, nil
}

func encodeCodes(codes []uint64) []byte {
	b := make([]byte, 0, 8*len(codes))
	for _, c := range codes {
		b = binary.LittleEndian.AppendUint64(b, c)
	}
	return b
}

func decodeCodes(b []byte, leaves int) ([]uint64, error) {
	if len(b) == 0 {
		return nil, nil
	}
	if len(b) != 8*(leaves+1) {
		return nil, fmt.Errorf("%w: codes block is %d bytes for %d leaves", ErrCorrupt, len(b), leaves)
	}
	out := make([]uint64, leaves+1)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[8*i:])
	}
	return out, nil
}

func encodeStarts(starts []int32) []byte {
	b := make([]byte, 0, 4*len(starts))
	for _, s := range starts {
		b = binary.LittleEndian.AppendUint32(b, uint32(s))
	}
	return b
}

func decodeStarts(b []byte, leaves int) ([]int32, error) {
	if len(b) == 0 {
		return nil, nil
	}
	if len(b) != 4*(leaves+1) {
		return nil, fmt.Errorf("%w: starts block is %d bytes for %d leaves", ErrCorrupt, len(b), leaves)
	}
	out := make([]int32, leaves+1)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out, nil
}

// Entry encoding: code u64 | id u64 | xbits u64 | ybits u64 | flags u8
// | payload length u32 | payload (omitted entirely for tombstones).
func encodeEntries(entries []Entry) []byte {
	size := 0
	for _, e := range entries {
		size += 33
		if !e.Tombstone {
			size += 4 + len(e.Payload)
		}
	}
	b := make([]byte, 0, size)
	for _, e := range entries {
		b = binary.LittleEndian.AppendUint64(b, e.Code)
		b = binary.LittleEndian.AppendUint64(b, e.ID)
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(e.X))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(e.Y))
		if e.Tombstone {
			b = append(b, 1)
			continue
		}
		b = append(b, 0)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(e.Payload)))
		b = append(b, e.Payload...)
	}
	return b
}

func decodeEntries(b []byte, n int) ([]Entry, error) {
	out := make([]Entry, 0, n)
	for len(b) > 0 {
		if len(b) < 33 {
			return nil, fmt.Errorf("%w: entry truncated", ErrCorrupt)
		}
		e := Entry{
			Code: binary.LittleEndian.Uint64(b[0:8]),
			ID:   binary.LittleEndian.Uint64(b[8:16]),
			X:    math.Float64frombits(binary.LittleEndian.Uint64(b[16:24])),
			Y:    math.Float64frombits(binary.LittleEndian.Uint64(b[24:32])),
		}
		switch b[32] {
		case 1:
			e.Tombstone = true
			b = b[33:]
		case 0:
			if len(b) < 37 {
				return nil, fmt.Errorf("%w: entry payload length truncated", ErrCorrupt)
			}
			pn := binary.LittleEndian.Uint32(b[33:37])
			if uint64(len(b)) < 37+uint64(pn) {
				return nil, fmt.Errorf("%w: entry payload truncated", ErrCorrupt)
			}
			if pn > 0 {
				e.Payload = append([]byte(nil), b[37:37+pn]...)
			}
			b = b[37+pn:]
		default:
			return nil, fmt.Errorf("%w: unknown entry flags %d", ErrCorrupt, b[32])
		}
		out = append(out, e)
	}
	if len(out) != n {
		return nil, fmt.Errorf("%w: %d entries decoded, header says %d", ErrCorrupt, len(out), n)
	}
	return out, nil
}

// ReadMeta decodes just the header and footer of the run at path — the
// cheap validity probe recovery uses to pick the newest usable run
// before paying for a full decode. The same ErrTorn/ErrCorrupt
// classification as Read applies, but block checksums are not verified.
func ReadMeta(path string) (Meta, error) {
	f, err := os.Open(path)
	if err != nil {
		return Meta{}, fmt.Errorf("segment: open %s: %w", path, err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return Meta{}, fmt.Errorf("segment: stat %s: %w", path, err)
	}
	if fi.Size() < headerSize+footerSize {
		return Meta{}, fmt.Errorf("segment: %s: %w: %d bytes", path, ErrTorn, fi.Size())
	}
	var footer [footerSize]byte
	if _, err := f.ReadAt(footer[:], fi.Size()-footerSize); err != nil && !errors.Is(err, io.EOF) {
		return Meta{}, fmt.Errorf("segment: read footer %s: %w", path, err)
	}
	if [8]byte(footer[12:20]) != endMagic {
		return Meta{}, fmt.Errorf("segment: %s: %w: no footer magic", path, ErrTorn)
	}
	crc := crc32.Checksum(footer[0:8], castagnoli)
	crc = crc32.Update(crc, castagnoli, endMagic[:])
	if binary.LittleEndian.Uint32(footer[8:12]) != crc {
		return Meta{}, fmt.Errorf("segment: %s: %w: footer checksum", path, ErrTorn)
	}
	var hdr [headerSize]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return Meta{}, fmt.Errorf("segment: read header %s: %w", path, err)
	}
	m, _, _, err := readHeader(hdr[:])
	if err != nil {
		return Meta{}, fmt.Errorf("segment: %s: %w", path, err)
	}
	return m, nil
}
