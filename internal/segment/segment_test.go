package segment

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"popana/internal/faultinject"
	"popana/internal/geom"
)

func sampleEntries(n int) []Entry {
	out := make([]Entry, n)
	for i := range out {
		out[i] = Entry{
			Code:    uint64(i) * 7,
			ID:      uint64(1000 + i),
			X:       float64(i) / 100,
			Y:       float64(i) / 50,
			Payload: []byte(fmt.Sprintf("v%d", i)),
		}
	}
	return out
}

func sampleMeta() Meta {
	return Meta{
		Kind:   Full,
		Shard:  2,
		Seq:    9,
		Region: geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1},
		Depth:  4,
	}
}

func writeSample(t *testing.T, dir string) (path string, entries []Entry, codes []uint64, starts []int32) {
	t.Helper()
	path = filepath.Join(dir, "run-2-000000009.seg")
	entries = sampleEntries(20)
	codes = []uint64{0, 7, 21, 70, 256} // leaf index incl. sentinel
	starts = []int32{0, 1, 3, 10, 20}
	if err := Write(path, sampleMeta(), codes, starts, entries, nil); err != nil {
		t.Fatal(err)
	}
	return path, entries, codes, starts
}

func TestWriteReadRoundTrip(t *testing.T) {
	path, entries, codes, starts := writeSample(t, t.TempDir())
	r, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	m := r.Meta
	if m.Kind != Full || m.Shard != 2 || m.Seq != 9 || m.Depth != 4 {
		t.Fatalf("meta = %+v", m)
	}
	if m.Leaves != len(codes)-1 || m.Entries != len(entries) {
		t.Fatalf("meta counts = %+v", m)
	}
	if m.Region != (geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}) {
		t.Fatalf("region = %+v", m.Region)
	}
	if len(r.Codes) != len(codes) || len(r.Starts) != len(starts) {
		t.Fatalf("leaf index: %d codes, %d starts", len(r.Codes), len(r.Starts))
	}
	for i := range codes {
		if r.Codes[i] != codes[i] || r.Starts[i] != starts[i] {
			t.Fatalf("leaf index mismatch at %d", i)
		}
	}
	if len(r.Entries) != len(entries) {
		t.Fatalf("%d entries, want %d", len(r.Entries), len(entries))
	}
	for i, e := range entries {
		g := r.Entries[i]
		if g.Code != e.Code || g.ID != e.ID || g.X != e.X || g.Y != e.Y ||
			g.Tombstone != e.Tombstone || !bytes.Equal(g.Payload, e.Payload) {
			t.Fatalf("entry %d = %+v, want %+v", i, g, e)
		}
	}
}

func TestDeltaRunNoLeafIndex(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run-0-000000001.seg")
	entries := []Entry{
		{Code: 3, ID: 1, X: 0.1, Y: 0.2, Payload: []byte("a")},
		{Code: 5, ID: 2, X: 0.3, Y: 0.4, Tombstone: true},
	}
	m := sampleMeta()
	m.Kind = Delta
	if err := Write(path, m, nil, nil, entries, nil); err != nil {
		t.Fatal(err)
	}
	r, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.Meta.Kind != Delta || r.Meta.Leaves != 0 || r.Codes != nil || r.Starts != nil {
		t.Fatalf("delta run decoded leaf index: %+v", r.Meta)
	}
	if len(r.Entries) != 2 || !r.Entries[1].Tombstone || r.Entries[1].Payload != nil {
		t.Fatalf("entries = %+v", r.Entries)
	}
}

func TestEmptyRun(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run-0-000000001.seg")
	m := sampleMeta()
	m.Kind = Delta
	if err := Write(path, m, nil, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	r, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Entries) != 0 || r.Meta.Entries != 0 {
		t.Fatalf("empty run decoded %d entries", len(r.Entries))
	}
}

func TestReadMetaMatchesRead(t *testing.T) {
	path, _, _, _ := writeSample(t, t.TempDir())
	m, err := ReadMeta(path)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if m != r.Meta {
		t.Fatalf("ReadMeta = %+v, Read meta = %+v", m, r.Meta)
	}
}

// Torn shapes: the file ends before the footer is complete. Both Read
// and ReadMeta must classify every one as ErrTorn, never ErrCorrupt.
func TestTornFileShapes(t *testing.T) {
	damages := map[string]func(t *testing.T, path string){
		"empty-file": func(t *testing.T, path string) {
			if err := os.Truncate(path, 0); err != nil {
				t.Fatal(err)
			}
		},
		"header-only": func(t *testing.T, path string) {
			if err := os.Truncate(path, headerSize); err != nil {
				t.Fatal(err)
			}
		},
		"mid-block": func(t *testing.T, path string) {
			fi, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(path, fi.Size()/2); err != nil {
				t.Fatal(err)
			}
		},
		"footer-shaved": func(t *testing.T, path string) {
			fi, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(path, fi.Size()-3); err != nil {
				t.Fatal(err)
			}
		},
	}
	for name, damage := range damages {
		t.Run(name, func(t *testing.T) {
			path, _, _, _ := writeSample(t, t.TempDir())
			damage(t, path)
			if _, err := Read(path); !errors.Is(err, ErrTorn) {
				t.Fatalf("Read = %v, want ErrTorn", err)
			}
			if _, err := ReadMeta(path); !errors.Is(err, ErrTorn) {
				t.Fatalf("ReadMeta = %v, want ErrTorn", err)
			}
		})
	}
}

// Corrupt shapes: the footer is intact (the write completed) but bytes
// inside the body were damaged afterwards → ErrCorrupt.
func TestCorruptFileShapes(t *testing.T) {
	flip := func(t *testing.T, path string, off int64) {
		t.Helper()
		f, err := os.OpenFile(path, os.O_RDWR, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		var b [1]byte
		if _, err := f.ReadAt(b[:], off); err != nil {
			t.Fatal(err)
		}
		b[0] ^= 0xFF
		if _, err := f.WriteAt(b[:], off); err != nil {
			t.Fatal(err)
		}
	}
	t.Run("header-byte", func(t *testing.T) {
		path, _, _, _ := writeSample(t, t.TempDir())
		flip(t, path, 30) // inside the region field
		if _, err := Read(path); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Read = %v, want ErrCorrupt", err)
		}
		if _, err := ReadMeta(path); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("ReadMeta = %v, want ErrCorrupt", err)
		}
	})
	t.Run("block-byte", func(t *testing.T) {
		path, _, _, _ := writeSample(t, t.TempDir())
		flip(t, path, headerSize+8+2) // inside the codes block payload
		if _, err := Read(path); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Read = %v, want ErrCorrupt", err)
		}
	})
	t.Run("footer-length-lies", func(t *testing.T) {
		// A valid footer whose body length disagrees with the file: the
		// completion marker says the write finished, so this is corruption.
		path, _, _, _ := writeSample(t, t.TempDir())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append([]byte{0}, data...), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Read(path); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Read = %v, want ErrCorrupt", err)
		}
	})
}

func TestInjectedPartialFlushLeavesTornFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run-0-000000001.seg")
	inj := faultinject.New(5)
	inj.EnableN(faultinject.SegmentPartialFlush, 1.0, 1)
	err := Write(path, sampleMeta(), []uint64{0, 256}, []int32{0, 3}, sampleEntries(3), inj)
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("injected Write error = %v", err)
	}
	// The torn file landed under the final name and reads as torn.
	if _, err := Read(path); !errors.Is(err, ErrTorn) {
		t.Fatalf("Read after partial flush = %v, want ErrTorn", err)
	}
	// Disarmed, the same write succeeds over the torn file.
	if err := Write(path, sampleMeta(), []uint64{0, 256}, []int32{0, 3}, sampleEntries(3), inj); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(path); err != nil {
		t.Fatalf("rewrite after torn flush: %v", err)
	}
}

func TestInjectedCorruptionRejectedByChecksum(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run-0-000000001.seg")
	inj := faultinject.New(5)
	inj.EnableN(faultinject.SegmentCorruption, 1.0, 1)
	err := Write(path, sampleMeta(), []uint64{0, 256}, []int32{0, 3}, sampleEntries(3), inj)
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("injected Write error = %v", err)
	}
	// No footer was written, so the damaged file is classified torn and
	// recovery discards it rather than serving damaged entries.
	if _, err := Read(path); !errors.Is(err, ErrTorn) {
		t.Fatalf("Read after injected corruption = %v, want ErrTorn", err)
	}
}

func TestWriteIsAtomicNoPartialFinalName(t *testing.T) {
	// A clean Write never exposes a partial file under the final name:
	// the only file in the directory after Write is the complete run.
	dir := t.TempDir()
	path := filepath.Join(dir, "run-0-000000001.seg")
	if err := Write(path, sampleMeta(), nil, nil, sampleEntries(5), nil); err != nil {
		t.Fatal(err)
	}
	names, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0].Name() != "run-0-000000001.seg" {
		t.Fatalf("dir contents = %v", names)
	}
}

func keyOf(e Entry) string { return fmt.Sprintf("%d/%v/%v", e.Code, e.X, e.Y) }

func TestMergeNewestWinsAndDropsTombstones(t *testing.T) {
	older := []Entry{
		{Code: 1, ID: 10, X: 0.1, Y: 0.1, Payload: []byte("old-a")},
		{Code: 2, ID: 11, X: 0.2, Y: 0.2, Payload: []byte("old-b")},
		{Code: 4, ID: 12, X: 0.4, Y: 0.4, Payload: []byte("old-c")},
	}
	newer := []Entry{
		{Code: 1, ID: 10, X: 0.1, Y: 0.1, Payload: []byte("new-a")}, // overwrite
		{Code: 2, ID: 11, X: 0.2, Y: 0.2, Tombstone: true},          // delete
		{Code: 3, ID: 13, X: 0.3, Y: 0.3, Payload: []byte("new-d")}, // insert
	}
	got := Merge(older, newer)
	want := []struct {
		code    uint64
		payload string
	}{{1, "new-a"}, {3, "new-d"}, {4, "old-c"}}
	if len(got) != len(want) {
		t.Fatalf("merged %d entries, want %d: %+v", len(got), len(want), got)
	}
	for i, w := range want {
		if got[i].Code != w.code || string(got[i].Payload) != w.payload {
			t.Fatalf("merge[%d] = %+v, want code=%d payload=%q", i, got[i], w.code, w.payload)
		}
	}
	// Output is sorted and strictly increasing.
	for i := 1; i < len(got); i++ {
		if !got[i-1].Less(got[i]) {
			t.Fatalf("merge output out of order at %d", i)
		}
	}
}

func TestMergeThreeWay(t *testing.T) {
	r1 := []Entry{{Code: 1, X: 1, Y: 1, Payload: []byte("r1")}, {Code: 5, X: 5, Y: 5, Payload: []byte("r1")}}
	r2 := []Entry{{Code: 1, X: 1, Y: 1, Tombstone: true}, {Code: 3, X: 3, Y: 3, Payload: []byte("r2")}}
	r3 := []Entry{{Code: 1, X: 1, Y: 1, Payload: []byte("r3")}, {Code: 5, X: 5, Y: 5, Tombstone: true}}
	got := Merge(r1, r2, r3)
	// Key 1: deleted in r2, re-inserted in r3 → "r3" survives.
	// Key 3: only in r2. Key 5: tombstoned by newest → gone.
	if len(got) != 2 || string(got[0].Payload) != "r3" || string(got[1].Payload) != "r2" {
		t.Fatalf("three-way merge = %+v", got)
	}
}

func TestMergeSingleRunStripsTombstones(t *testing.T) {
	run := []Entry{
		{Code: 1, X: 1, Y: 1, Payload: []byte("keep")},
		{Code: 2, X: 2, Y: 2, Tombstone: true},
	}
	got := Merge(run)
	if len(got) != 1 || string(got[0].Payload) != "keep" {
		t.Fatalf("single-run merge = %+v", got)
	}
	if got := Merge(); got != nil {
		t.Fatalf("zero-run merge = %+v", got)
	}
}

func TestMergeSameCodeDifferentLocation(t *testing.T) {
	// Two points sharing a Morton cell are distinct keys: both survive.
	older := []Entry{{Code: 7, ID: 1, X: 0.10, Y: 0.10, Payload: []byte("p")}}
	newer := []Entry{{Code: 7, ID: 2, X: 0.11, Y: 0.10, Payload: []byte("q")}}
	got := Merge(older, newer)
	if len(got) != 2 {
		t.Fatalf("merge collapsed distinct locations: %+v", got)
	}
	seen := map[string]bool{}
	for _, e := range got {
		seen[keyOf(e)] = true
	}
	if len(seen) != 2 {
		t.Fatalf("duplicate keys in merge output: %+v", got)
	}
}

func TestReadRejectsOutOfOrderEntries(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run-0-000000001.seg")
	entries := []Entry{
		{Code: 9, X: 1, Y: 1, Payload: []byte("b")},
		{Code: 3, X: 0, Y: 0, Payload: []byte("a")},
	}
	m := sampleMeta()
	m.Kind = Delta
	if err := Write(path, m, nil, nil, entries, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("out-of-order run read = %v, want ErrCorrupt", err)
	}
}
