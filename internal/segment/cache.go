package segment

// A fixed-budget CLOCK cache over decoded entry blocks. The cache is
// shared by every Reader of a table (keys carry the reader's identity),
// counts its budget in encoded payload bytes — the stable, fully
// deterministic size of a block — and admits a block only after the
// Reader has verified its checksum, so poisoned or torn bytes can never
// be served twice.
//
// CLOCK approximates LRU with one reference bit per slot and a rotating
// eviction hand: a hit sets the bit, the hand clears set bits as it
// sweeps and evicts the first slot found clear. That gives scan
// resistance close to LRU at a fraction of the bookkeeping — no list
// splicing on the hot hit path, just a map lookup and a bit store under
// a short mutex.

import "sync"

// cacheKey identifies one entry block of one open Reader.
type cacheKey struct {
	reader uint64
	block  int
}

// cacheSlot is one CLOCK ring slot.
type cacheSlot struct {
	key     cacheKey
	entries []Entry
	size    int64
	ref     bool
	live    bool
}

// CacheStats is a point-in-time snapshot of a Cache's counters.
type CacheStats struct {
	// Hits and Misses count lookups since the cache was created; Drop
	// and eviction do not reset them.
	Hits, Misses int64
	// Evictions counts blocks evicted to make room (Drop and reader
	// teardown are not evictions).
	Evictions int64
	// Used is the current resident size in encoded payload bytes;
	// Budget is the configured ceiling.
	Used, Budget int64
}

// Cache is a byte-budgeted CLOCK cache of decoded entry blocks, safe
// for concurrent use. A nil *Cache is valid and caches nothing, so
// Readers consult it unconditionally.
type Cache struct {
	mu     sync.Mutex
	budget int64
	used   int64
	slots  []cacheSlot
	hand   int
	byKey  map[cacheKey]int

	hits, misses, evictions int64
}

// NewCache returns a cache bounded to budget bytes of decoded blocks
// (measured by encoded payload size). A budget <= 0 returns nil — a
// valid, always-miss cache.
func NewCache(budget int64) *Cache {
	if budget <= 0 {
		return nil
	}
	return &Cache{budget: budget, byKey: map[cacheKey]int{}}
}

// Stats returns the cache's counters. Nil-safe: a nil cache reports
// zeros.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Used:      c.used,
		Budget:    c.budget,
	}
}

// Drop empties the cache, keeping the hit/miss history. The next read
// of every block goes to disk — the cold-cache state benchmarks start
// from. Nil-safe.
func (c *Cache) Drop() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.slots {
		c.slots[i] = cacheSlot{}
	}
	c.byKey = map[cacheKey]int{}
	c.used = 0
	c.hand = 0
}

// get returns the cached block, counting the lookup. Nil-safe.
func (c *Cache) get(key cacheKey) ([]Entry, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	i, ok := c.byKey[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.slots[i].ref = true
	return c.slots[i].entries, true
}

// add admits a checksum-verified block, evicting CLOCK victims until it
// fits. Blocks larger than the whole budget are never admitted.
// Nil-safe.
func (c *Cache) add(key cacheKey, entries []Entry, size int64) {
	if c == nil || size > c.budget {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.byKey[key]; ok {
		return // a concurrent reader of the same block won the race
	}
	for c.used+size > c.budget {
		c.evictOne()
	}
	slot := -1
	for i := range c.slots {
		if !c.slots[i].live {
			slot = i
			break
		}
	}
	if slot < 0 {
		c.slots = append(c.slots, cacheSlot{})
		slot = len(c.slots) - 1
	}
	c.slots[slot] = cacheSlot{key: key, entries: entries, size: size, ref: true, live: true}
	c.byKey[key] = slot
	c.used += size
}

// evictOne advances the CLOCK hand — clearing reference bits as it
// sweeps — and evicts the first unreferenced live slot. The caller
// holds c.mu and guarantees at least one live slot (used > 0).
func (c *Cache) evictOne() {
	for {
		if c.hand >= len(c.slots) {
			c.hand = 0
		}
		s := &c.slots[c.hand]
		if s.live {
			if s.ref {
				s.ref = false
			} else {
				delete(c.byKey, s.key)
				c.used -= s.size
				*s = cacheSlot{}
				c.evictions++
				c.hand++
				return
			}
		}
		c.hand++
	}
}

// dropReader evicts every block belonging to one reader, called when
// the reader closes (a compaction superseded its run). Not counted as
// eviction pressure. Nil-safe.
func (c *Cache) dropReader(id uint64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for key, i := range c.byKey {
		if key.reader == id {
			c.used -= c.slots[i].size
			c.slots[i] = cacheSlot{}
			delete(c.byKey, key)
		}
	}
}
