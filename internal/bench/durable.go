// durable.go holds the durable-table benchmarks: the per-record
// WAL-append insert path, the flush path that seals a WAL into a run
// file, and crash-recovery replay. Each works against a fresh temp
// directory so runs never contaminate each other.
package bench

import (
	"testing"

	"popana/internal/geom"
	"popana/internal/spatialdb"
)

func durableSpecs() []Spec {
	return []Spec{
		{"DurableInsert", benchDurableInsert},
		{"DurableFlush", benchDurableFlush},
		{"DurableRecover", benchDurableRecover},
		{"DurableQueryCold", benchDurableQueryCold},
		{"DurableQueryWarm", benchDurableQueryWarm},
	}
}

// durableBatch is the record count of one durable benchmark op.
const durableBatch = 1000

func newDurableTable(b *testing.B) *spatialdb.Table {
	b.Helper()
	db := spatialdb.NewDB()
	tab, err := db.CreateDurableTable("t",
		spatialdb.TableOptions{Capacity: 8, ShardBits: shardedBits},
		spatialdb.DurableOptions{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	return tab
}

// benchDurableInsert measures the per-record durable insert path: a WAL
// append plus the in-memory index insert. One op = durableBatch single
// inserts into a fresh table; construction and teardown are outside the
// timer.
func benchDurableInsert(b *testing.B) {
	recs := uniformRecords(b, durableBatch, 91)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tab := newDurableTable(b)
		b.StartTimer()
		for _, r := range recs {
			if err := tab.Insert(r); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		tab.Kill()
		b.StartTimer()
	}
	b.ReportMetric(durableBatch, "records/op")
}

// benchDurableFlush measures sealing a populated WAL into a sorted
// delta run: one op = a durableBatch insert batch plus the Flush that
// folds it to disk.
func benchDurableFlush(b *testing.B) {
	recs := uniformRecords(b, durableBatch, 92)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tab := newDurableTable(b)
		b.StartTimer()
		if err := tab.InsertBatch(recs); err != nil {
			b.Fatal(err)
		}
		if err := tab.Flush(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		tab.Kill()
		b.StartTimer()
	}
	b.ReportMetric(durableBatch, "records/op")
}

// benchDurableRecover measures crash-recovery replay: a table killed
// with sealed runs plus a live WAL tail is reopened once per op. The
// on-disk state is built once; recovery does not mutate a cleanly
// killed directory, so every iteration replays the same ladder.
func benchDurableRecover(b *testing.B) {
	const n = 5 * durableBatch
	opts := spatialdb.TableOptions{Capacity: 8, ShardBits: shardedBits}
	dopts := spatialdb.DurableOptions{Dir: b.TempDir()}
	recs := uniformRecords(b, n, 93)
	tab, err := spatialdb.NewDB().CreateDurableTable("t", opts, dopts)
	if err != nil {
		b.Fatal(err)
	}
	if err := tab.InsertBatch(recs[:4*durableBatch]); err != nil {
		b.Fatal(err)
	}
	if err := tab.Flush(); err != nil {
		b.Fatal(err)
	}
	for _, r := range recs[4*durableBatch:] {
		if err := tab.Insert(r); err != nil {
			b.Fatal(err)
		}
	}
	tab.Kill()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab, err := spatialdb.NewDB().OpenDurableTable("t", opts, dopts)
		if err != nil {
			b.Fatal(err)
		}
		if tab.Len() != n {
			b.Fatalf("recovered %d records, want %d", tab.Len(), n)
		}
		b.StopTimer()
		tab.Kill()
		b.StartTimer()
	}
	b.ReportMetric(n, "records/op")
}

// lazyQueryRecords is the population of the disk-query benchmarks.
const lazyQueryRecords = 10 * durableBatch

// newLazyQueryTable builds a lazy durable table whose state spans the
// whole storage ladder — a compacted full run per shard, a sealed delta
// run, and a live WAL tail — so the query benchmarks exercise the
// k-way merged read path, not a degenerate single source.
func newLazyQueryTable(b *testing.B) *spatialdb.Table {
	b.Helper()
	recs := uniformRecords(b, lazyQueryRecords, 94)
	tab, err := spatialdb.NewDB().CreateDurableTable("t",
		spatialdb.TableOptions{Capacity: 8, ShardBits: shardedBits},
		spatialdb.DurableOptions{Dir: b.TempDir(), Lazy: true})
	if err != nil {
		b.Fatal(err)
	}
	if err := tab.InsertBatch(recs[:8*durableBatch]); err != nil {
		b.Fatal(err)
	}
	if err := tab.CompactDisk(); err != nil {
		b.Fatal(err)
	}
	if err := tab.InsertBatch(recs[8*durableBatch : 9*durableBatch]); err != nil {
		b.Fatal(err)
	}
	if err := tab.Flush(); err != nil {
		b.Fatal(err)
	}
	if err := tab.InsertBatch(recs[9*durableBatch:]); err != nil {
		b.Fatal(err)
	}
	return tab
}

// lazyQueryWindow is ~1% of the unit square, so one op touches a few
// blocks per shard rather than the whole ladder.
var lazyQueryWindow = geom.R(0.45, 0.45, 0.55, 0.55)

func lazyQueryOp(b *testing.B, tab *spatialdb.Table) {
	b.Helper()
	recs, _, err := tab.Select(spatialdb.Query{Window: &lazyQueryWindow})
	if err != nil {
		b.Fatal(err)
	}
	if len(recs) == 0 {
		b.Fatal("empty window")
	}
}

// benchDurableQueryCold measures a window query against sealed runs
// with a cold block cache: the cache is dropped before every op, so
// each op pays the full disk read + checksum + decode cost.
func benchDurableQueryCold(b *testing.B) {
	tab := newLazyQueryTable(b)
	defer tab.Kill()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tab.DropBlockCache()
		b.StartTimer()
		lazyQueryOp(b, tab)
	}
	b.ReportMetric(lazyQueryRecords, "records")
}

// benchDurableQueryWarm is the same query with the cache left alone: a
// priming op loads the window's blocks, then every measured op serves
// from cache. Cold minus warm is the disk tax of the lazy read path.
func benchDurableQueryWarm(b *testing.B) {
	tab := newLazyQueryTable(b)
	defer tab.Kill()
	lazyQueryOp(b, tab) // prime the cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lazyQueryOp(b, tab)
	}
	b.ReportMetric(lazyQueryRecords, "records")
}
