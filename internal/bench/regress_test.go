package bench

import (
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// TestGoldenRoundTrip reads the golden report fixture, writes it back
// out, and re-reads it: the decoded forms must be identical, pinning the
// BENCH_*.json schema.
func TestGoldenRoundTrip(t *testing.T) {
	golden := filepath.Join("testdata", "golden_report.json")
	r, err := ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Results) != 2 || r.Results[0].Name != "QuadtreeInsert" {
		t.Fatalf("unexpected golden contents: %+v", r)
	}
	if r.Results[0].Metrics["points/op"] != 10000 {
		t.Fatalf("metrics lost in decode: %+v", r.Results[0].Metrics)
	}
	out := filepath.Join(t.TempDir(), "out.json")
	if err := r.WriteFile(out); err != nil {
		t.Fatal(err)
	}
	r2, err := ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, r2) {
		t.Fatalf("round trip changed the report:\n got %+v\nwant %+v", r2, r)
	}
}

// TestCompare exercises the regression detector on crafted reports.
func TestCompare(t *testing.T) {
	base := Report{GOOS: "linux", GOARCH: "amd64", Results: []Result{
		{Name: "A", NsPerOp: 100, AllocsPerOp: 10},
		{Name: "B", NsPerOp: 100, AllocsPerOp: 10},
		{Name: "Gone", NsPerOp: 1, AllocsPerOp: 1},
	}}
	cur := Report{GOOS: "linux", GOARCH: "amd64", Results: []Result{
		{Name: "A", NsPerOp: 115, AllocsPerOp: 10}, // +15%: within threshold
		{Name: "B", NsPerOp: 150, AllocsPerOp: 13}, // +50% ns, +30% allocs
		{Name: "New", NsPerOp: 1e9, AllocsPerOp: 1e6},
	}}
	regs := Compare(base, cur, 0.20)
	if len(regs) != 2 {
		t.Fatalf("want 2 regressions, got %d: %v", len(regs), regs)
	}
	if regs[0].Name != "B" || regs[0].Metric != "allocs/op" {
		t.Errorf("unexpected first regression: %+v", regs[0])
	}
	if regs[1].Name != "B" || regs[1].Metric != "ns/op" || regs[1].Ratio < 1.49 || regs[1].Ratio > 1.51 {
		t.Errorf("unexpected second regression: %+v", regs[1])
	}

	// A baseline from another machine must not produce timing
	// regressions, but allocs/op still count.
	other := base
	other.GOARCH = "arm64"
	regs = Compare(other, cur, 0.20)
	if len(regs) != 1 || regs[0].Metric != "allocs/op" {
		t.Fatalf("cross-arch compare should keep only allocs: %v", regs)
	}
}

// TestCompareCPUMismatch: a baseline from a machine with a different
// core count must not produce ns/op regressions for the
// concurrency-sensitive benchmarks (their timing is a function of the
// core count), while plain single-threaded benchmarks and allocs/op
// are still compared.
func TestCompareCPUMismatch(t *testing.T) {
	base := Report{GOOS: "linux", GOARCH: "amd64", NumCPU: 8, Results: []Result{
		{Name: "ParallelInsertSharded8", NsPerOp: 100, AllocsPerOp: 10},
		{Name: "MixedRW90R", NsPerOp: 100, AllocsPerOp: 10},
		{Name: "FrozenGet64k", NsPerOp: 100, AllocsPerOp: 0},
	}}
	cur := Report{GOOS: "linux", GOARCH: "amd64", NumCPU: 1, Results: []Result{
		{Name: "ParallelInsertSharded8", NsPerOp: 900, AllocsPerOp: 14}, // 9x ns on 1 CPU: expected
		{Name: "MixedRW90R", NsPerOp: 500, AllocsPerOp: 10},
		{Name: "FrozenGet64k", NsPerOp: 300, AllocsPerOp: 0}, // real regression
	}}
	if CPUComparable(base, cur) {
		t.Fatal("8-CPU vs 1-CPU reports marked comparable")
	}
	regs := Compare(base, cur, 0.20)
	want := map[string]bool{
		"ParallelInsertSharded8/allocs/op": true, // allocs are machine-independent
		"FrozenGet64k/ns/op":               true,
	}
	if len(regs) != len(want) {
		t.Fatalf("want %d regressions, got %d: %v", len(want), len(regs), regs)
	}
	for _, g := range regs {
		if !want[g.Name+"/"+g.Metric] {
			t.Errorf("unexpected regression survived the CPU-mismatch skip: %+v", g)
		}
	}

	// Same core count (or a baseline that predates num_cpu): the
	// concurrency-sensitive timings are compared again.
	same := base
	same.NumCPU = 1
	if !CPUComparable(same, cur) || !CPUComparable(Report{}, cur) {
		t.Fatal("matching or unrecorded num_cpu marked incomparable")
	}
	regs = Compare(same, cur, 0.20)
	if len(regs) != 4 {
		t.Fatalf("same-CPU compare lost regressions: %v", regs)
	}
}

// TestFrozenRangeSpeedup checks the geomean helper the cmd/bench
// speedup gate is built on.
func TestFrozenRangeSpeedup(t *testing.T) {
	base := Report{Results: []Result{
		{Name: "FrozenRangeUniformM8", NsPerOp: 400},
		{Name: "FrozenRangeClusterM8", NsPerOp: 100},
		{Name: "FrozenGet64k", NsPerOp: 50}, // not a FrozenRange bench
	}}
	cur := Report{Results: []Result{
		{Name: "FrozenRangeUniformM8", NsPerOp: 100}, // 4x
		{Name: "FrozenRangeClusterM8", NsPerOp: 100}, // 1x
		{Name: "FrozenGet64k", NsPerOp: 5000},
		{Name: "FrozenRangeNewOnly", NsPerOp: 1}, // no baseline: ignored
	}}
	speedup, n := FrozenRangeSpeedup(base, cur)
	if n != 2 {
		t.Fatalf("want 2 contributing pairs, got %d", n)
	}
	if speedup < 1.99 || speedup > 2.01 { // geomean(4, 1) = 2
		t.Fatalf("geomean speedup = %v, want 2", speedup)
	}
	if _, n := FrozenRangeSpeedup(Report{}, cur); n != 0 {
		t.Fatalf("speedup with empty baseline reported %d pairs", n)
	}
}

// TestGetBatchSpeedup checks the within-report scalar-vs-batch geomean
// behind cmd/bench's -getbatch-speedup gate: only TableGetScalar/
// TableGetBatch pairs count, the Lazy (disk-regime) pair is excluded,
// and a non-positive timing invalidates the whole gate.
func TestGetBatchSpeedup(t *testing.T) {
	r := Report{Results: []Result{
		{Name: "TableGetScalar64k", NsPerOp: 400},
		{Name: "TableGetBatch64k", NsPerOp: 100}, // 4x
		{Name: "TableGetScalarSkew64k", NsPerOp: 100},
		{Name: "TableGetBatchSkew64k", NsPerOp: 100}, // 1x
		{Name: "TableGetScalarLazy", NsPerOp: 1000},
		{Name: "TableGetBatchLazy", NsPerOp: 1},     // disk regime: excluded
		{Name: "TableGetScalarOrphan", NsPerOp: 50}, // no batch twin: skipped
		{Name: "TableCountBatch64k", NsPerOp: 10},   // not a Get pair
	}}
	speedup, n := r.GetBatchSpeedup()
	if n != 2 {
		t.Fatalf("want 2 contributing pairs, got %d", n)
	}
	if speedup < 1.99 || speedup > 2.01 { // geomean(4, 1) = 2
		t.Fatalf("geomean speedup = %v, want 2", speedup)
	}
	if _, n := (Report{}).GetBatchSpeedup(); n != 0 {
		t.Fatalf("empty report contributed %d pairs", n)
	}
	bad := Report{Results: []Result{
		{Name: "TableGetScalar64k", NsPerOp: 400},
		{Name: "TableGetBatch64k", NsPerOp: 0},
	}}
	if _, n := bad.GetBatchSpeedup(); n != 0 {
		t.Fatalf("non-positive timing contributed %d pairs", n)
	}
}

// TestRunSmoke runs one real (tiny) benchmark through the harness and
// checks the report is populated.
func TestRunSmoke(t *testing.T) {
	if err := SetBenchtime(10 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	specs := []Spec{{Name: "Noop", F: func(b *testing.B) {
		s := 0
		for i := 0; i < b.N; i++ {
			s += i
		}
		_ = s
		b.ReportMetric(42, "answer")
	}}}
	r := Run("test", specs, nil)
	if len(r.Results) != 1 || r.Results[0].Iterations == 0 {
		t.Fatalf("empty run result: %+v", r)
	}
	if r.Results[0].Metrics["answer"] != 42 {
		t.Fatalf("metric not captured: %+v", r.Results[0])
	}
	if r.GoVersion == "" || r.GOMAXPROCS < 1 {
		t.Fatalf("environment not recorded: %+v", r)
	}
}
