// tablebatch.go holds the table-level batched-read benchmarks: a
// scalar Get loop versus one GetBatch call over the identical probe
// stream, so each scalar/batch pair's ns/op divide into a clean
// amortization factor — the number behind cmd/bench's
// -getbatch-speedup gate. Three id mixes exercise the three serving
// regimes: a uniform mix across all shards of the in-memory sharded
// path, a shard-skewed mix that lands every probe in one Morton cell,
// and a lazy durable ladder where the batch path walks the sealed run
// stack behind the per-run prefix filters. A CountRange pair rides
// along for the window-batch path.
package bench

import (
	"testing"

	"popana/internal/geom"
	"popana/internal/spatialdb"
	"popana/internal/xrand"
)

// tableBatchSpecs returns the batched-read specs. The short set keeps
// the in-memory Get pairs — the gate family — and drops the durable
// ladder and the window pair, mirroring how the rest of the suite
// trims to micro-benchmarks for CI smoke runs.
func tableBatchSpecs(short bool) []Spec {
	specs := []Spec{
		{"TableGetScalar64k", benchTableGetScalar(batchUniformIDs)},
		{"TableGetBatch64k", benchTableGetBatch(batchUniformIDs)},
		{"TableGetScalarSkew64k", benchTableGetScalar(batchSkewedIDs)},
		{"TableGetBatchSkew64k", benchTableGetBatch(batchSkewedIDs)},
	}
	if !short {
		specs = append(specs,
			Spec{"TableCountScalar64k", benchTableCount(false)},
			Spec{"TableCountBatch64k", benchTableCount(true)},
			Spec{"TableGetScalarLazy", benchTableGetLazy(false)},
			Spec{"TableGetBatchLazy", benchTableGetLazy(true)},
		)
	}
	return specs
}

const (
	// tableBatchRecords is the population of the in-memory batch
	// benchmarks: 64k entries, the scale the acceptance gate names.
	tableBatchRecords = 64 * 1024
	// tableBatchProbes is the probe count of one benchmark op — one
	// GetBatch call, or the same number of scalar Gets.
	tableBatchProbes = 1024
)

// newBatchBenchTable builds the shared 64k sharded in-memory table,
// compacted so every shard serves from a frozen snapshot — the
// steady-state read regime the batch engine targets.
func newBatchBenchTable(b *testing.B) (*spatialdb.Table, []spatialdb.Record) {
	b.Helper()
	recs := uniformRecords(b, tableBatchRecords, 95)
	tab, err := spatialdb.NewDB().CreateTableWith("t",
		spatialdb.TableOptions{Capacity: 8, ShardBits: shardedBits})
	if err != nil {
		b.Fatal(err)
	}
	if err := tab.InsertBatch(recs); err != nil {
		b.Fatal(err)
	}
	if err := tab.Compact(); err != nil {
		b.Fatal(err)
	}
	return tab, recs
}

// batchUniformIDs is the uniform probe mix: 3 of 4 probes hit a live
// id, 1 of 4 asks for an id above the population — the same hit ratio
// the kernel-level FrozenGetBatch benchmark uses, so the table-level
// numbers compose with it.
func batchUniformIDs(recs []spatialdb.Record, seed uint64) []uint64 {
	rng := xrand.New(seed)
	n := uint64(len(recs))
	ids := make([]uint64, tableBatchProbes)
	for i := range ids {
		if rng.Uint64()%4 == 0 {
			ids[i] = n + rng.Uint64()%n // definite miss
		} else {
			ids[i] = recs[rng.Uint64()%n].ID
		}
	}
	return ids
}

// batchSkewedIDs is the hot-shard mix: every probe hits a record in
// the lowest Morton cell ([0,0.25)^2 at ShardBits 2), so the whole
// batch collapses into one shard group — the best case for the
// partition (one lock, one kernel call) and the worst case for
// contention on the scalar path.
func batchSkewedIDs(recs []spatialdb.Record, seed uint64) []uint64 {
	var hot []uint64
	for _, r := range recs {
		if r.Loc.X < 0.25 && r.Loc.Y < 0.25 {
			hot = append(hot, r.ID)
		}
	}
	rng := xrand.New(seed)
	ids := make([]uint64, tableBatchProbes)
	for i := range ids {
		ids[i] = hot[rng.Uint64()%uint64(len(hot))]
	}
	return ids
}

// benchTableGetScalar measures the baseline the batch path is gated
// against: tableBatchProbes scalar Gets over the same id stream the
// batch benchmark replays. One op = the full probe stream.
func benchTableGetScalar(mix func([]spatialdb.Record, uint64) []uint64) func(*testing.B) {
	return func(b *testing.B) {
		tab, recs := newBatchBenchTable(b)
		ids := mix(recs, 96)
		hits := 0
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			hits = 0
			for _, id := range ids {
				if _, ok := tab.Get(id); ok {
					hits++
				}
			}
		}
		b.ReportMetric(tableBatchProbes, "probes/op")
		b.ReportMetric(float64(hits), "hits/op")
	}
}

// benchTableGetBatch measures one GetBatch call over the identical
// probe stream, scratch warmed outside the timer so the measured loop
// is the steady state the zero-alloc guarantee covers.
func benchTableGetBatch(mix func([]spatialdb.Record, uint64) []uint64) func(*testing.B) {
	return func(b *testing.B) {
		tab, recs := newBatchBenchTable(b)
		ids := mix(recs, 96)
		var sc spatialdb.BatchScratch
		out := make([]spatialdb.Record, len(ids))
		found := make([]bool, len(ids))
		hits := tab.GetBatch(&sc, ids, out, found) // warm the scratch
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			hits = tab.GetBatch(&sc, ids, out, found)
		}
		b.ReportMetric(tableBatchProbes, "probes/op")
		b.ReportMetric(float64(hits), "hits/op")
	}
}

// batchCountWindows returns 64 small windows (0.05 on a side, ~0.25%
// of the unit square each) scattered by seed, the window stream both
// count benchmarks share.
func batchCountWindows(seed uint64) []geom.Rect {
	rng := xrand.New(seed)
	ws := make([]geom.Rect, 64)
	for i := range ws {
		x := rng.Float64() * 0.95
		y := rng.Float64() * 0.95
		ws[i] = geom.R(x, y, x+0.05, y+0.05)
	}
	return ws
}

// benchTableCount measures the window-batch path against its scalar
// baseline: 64 CountRange windows one by one, or one CountRangeBatch
// call over the same slice.
func benchTableCount(batch bool) func(*testing.B) {
	return func(b *testing.B) {
		tab, _ := newBatchBenchTable(b)
		windows := batchCountWindows(97)
		b.ReportAllocs()
		if batch {
			var sc spatialdb.BatchScratch
			counts := make([]int, len(windows))
			if err := tab.CountRangeBatch(&sc, windows, counts); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := tab.CountRangeBatch(&sc, windows, counts); err != nil {
					b.Fatal(err)
				}
			}
		} else {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, w := range windows {
					if _, _, err := tab.CountRange(w, 0); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
		b.ReportMetric(float64(len(windows)), "windows/op")
	}
}

// benchTableGetLazy measures the disk-backed Get pair on the lazy
// ladder the durable query benchmarks use (full run + delta run + WAL
// tail): the batch path sorts each shard group by Morton code and
// walks the run stack once behind the prefix filters, where the
// scalar loop walks it per probe. A priming pass loads the touched
// blocks so the measured loop is the warm-cache serving cost.
func benchTableGetLazy(batch bool) func(*testing.B) {
	return func(b *testing.B) {
		tab := newLazyQueryTable(b)
		defer tab.Kill()
		rng := xrand.New(98)
		ids := make([]uint64, tableBatchProbes)
		for i := range ids {
			if rng.Uint64()%4 == 0 {
				ids[i] = lazyQueryRecords + rng.Uint64()%lazyQueryRecords
			} else {
				ids[i] = rng.Uint64() % lazyQueryRecords
			}
		}
		hits := 0
		b.ReportAllocs()
		if batch {
			var sc spatialdb.BatchScratch
			out := make([]spatialdb.Record, len(ids))
			found := make([]bool, len(ids))
			hits = tab.GetBatch(&sc, ids, out, found) // prime cache + scratch
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				hits = tab.GetBatch(&sc, ids, out, found)
			}
		} else {
			for _, id := range ids { // prime the cache
				tab.Get(id)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				hits = 0
				for _, id := range ids {
					if _, ok := tab.Get(id); ok {
						hits++
					}
				}
			}
		}
		b.ReportMetric(tableBatchProbes, "probes/op")
		b.ReportMetric(float64(hits), "hits/op")
	}
}
