package bench

import (
	"fmt"
	"testing"

	"popana/internal/dist"
	"popana/internal/geom"
	"popana/internal/linearquad"
	"popana/internal/quadtree"
	"popana/internal/spatialdb"
	"popana/internal/xrand"
)

// The frozen-vs-live benchmarks: identical query streams against the
// pointer tree and its linear (Morton-coded) snapshot, across the
// paper's capacity range and both data distributions. The headline pair
// is FrozenRangeUniformM8 vs LiveRangeUniformM8 on the 64k-point
// uniform workload.

// frozenSpecs returns the frozen-vs-live benchmark specs. The short set
// carries the headline m=8 pair plus the build and lookup costs; the
// full set sweeps m ∈ {1,2,4,8,16,32} over uniform and clustered data.
func frozenSpecs(short bool) []Spec {
	specs := []Spec{
		{"FreezeBuild64k", benchFreezeBuild},
		{"FreezeIncremental64k", benchFreezeIncremental(64)},
		{"FrozenGet64k", benchFrozenGet},
		{"FrozenGetBatch64k", benchFrozenGetBatch},
		{"LiveRangeUniformM8", benchRange(8, false, false)},
		{"FrozenRangeUniformM8", benchRange(8, false, true)},
		{"LiveRangeVisitUniformM8", benchRangeVisit(false)},
		{"FrozenRangeVisitUniformM8", benchRangeVisit(true)},
		{"SpatialSelectLive", benchSpatialSelect(false, false)},
		{"SpatialSelectSnapshot", benchSpatialSelect(true, false)},
		{"SpatialCountLive", benchSpatialSelect(false, true)},
		{"SpatialCountSnapshot", benchSpatialSelect(true, true)},
	}
	if short {
		return specs
	}
	for _, k := range []int{16, 1024} { // 64 is in the short set
		specs = append(specs,
			Spec{fmt.Sprintf("FreezeIncrementalChurn%d", k), benchFreezeIncremental(k)})
	}
	for _, m := range []int{1, 2, 4, 16, 32} { // 8 is in the short set
		specs = append(specs,
			Spec{fmt.Sprintf("LiveRangeUniformM%d", m), benchRange(m, false, false)},
			Spec{fmt.Sprintf("FrozenRangeUniformM%d", m), benchRange(m, false, true)},
		)
	}
	for _, m := range []int{1, 2, 4, 8, 16, 32} {
		specs = append(specs,
			Spec{fmt.Sprintf("LiveRangeClusterM%d", m), benchRange(m, true, false)},
			Spec{fmt.Sprintf("FrozenRangeClusterM%d", m), benchRange(m, true, true)},
		)
	}
	return specs
}

const frozenWorkload = 64 * 1024

// rangeTree builds the shared 64k-point workload tree for capacity m.
func rangeTree(b *testing.B, m int, clustered bool) *quadtree.Tree[int] {
	rng := xrand.New(uint64(7000 + m))
	var src dist.PointSource
	if clustered {
		src = dist.NewClusters(geom.UnitSquare, 8, 0.02, rng.Split())
	} else {
		src = dist.NewUniform(geom.UnitSquare, rng.Split())
	}
	qt := quadtree.MustNew[int](quadtree.Config{Capacity: m})
	for qt.Len() < frozenWorkload {
		if _, err := qt.Insert(src.Next(), qt.Len()); err != nil {
			b.Fatal(err)
		}
	}
	return qt
}

// rangeWindows is the query stream shared by the live and frozen runs:
// windows with sides from 10% to 40% of the region (roughly 1%-16%
// selectivity, the classic range-search regime), uniformly placed.
func rangeWindows() []geom.Rect {
	rng := xrand.New(7777)
	qs := make([]geom.Rect, 64)
	for i := range qs {
		w := 0.1 + 0.3*rng.Float64()
		h := 0.1 + 0.3*rng.Float64()
		x, y := rng.Float64(), rng.Float64()
		qs[i] = geom.R(x-w/2, y-h/2, x+w/2, y+h/2)
	}
	return qs
}

// benchRange measures range-query (window count, as in QuadtreeRange)
// throughput for one capacity and distribution, against the live tree
// or its frozen snapshot.
func benchRange(m int, clustered, frozen bool) func(*testing.B) {
	return func(b *testing.B) {
		qt := rangeTree(b, m, clustered)
		queries := rangeWindows()
		count := qt.CountRange
		if frozen {
			f, err := linearquad.Freeze(qt)
			if err != nil {
				b.Fatal(err)
			}
			count = f.CountRange
		}
		// Validate the stream during setup: individual windows may be
		// empty (clustered data leaves most of the region bare), but the
		// stream as a whole must hit something or the benchmark is vacuous.
		total := 0
		for _, q := range queries {
			total += count(q)
		}
		if total == 0 {
			b.Fatal("query stream matched nothing")
		}
		b.ReportAllocs()
		b.ResetTimer()
		matched := 0
		for i := 0; i < b.N; i++ {
			matched += count(queries[i%len(queries)])
		}
		b.StopTimer()
		b.ReportMetric(float64(matched)/float64(b.N), "matches/op")
	}
}

// benchRangeVisit is the visitor-delivery variant of the headline pair:
// every matching point is handed to a callback, so both sides pay the
// same per-match delivery cost and the ratio isolates the traversal.
func benchRangeVisit(frozen bool) func(*testing.B) {
	return func(b *testing.B) {
		qt := rangeTree(b, 8, false)
		queries := rangeWindows()
		scan := qt.Range
		if frozen {
			f, err := linearquad.Freeze(qt)
			if err != nil {
				b.Fatal(err)
			}
			scan = f.Range
		}
		total := 0
		for _, q := range queries {
			scan(q, func(geom.Point, int) bool { total++; return true })
		}
		if total == 0 {
			b.Fatal("query stream matched nothing")
		}
		b.ReportAllocs()
		b.ResetTimer()
		matched := 0
		for i := 0; i < b.N; i++ {
			n := 0
			scan(queries[i%len(queries)], func(geom.Point, int) bool { n++; return true })
			matched += n
		}
		b.StopTimer()
		b.ReportMetric(float64(matched)/float64(b.N), "matches/op")
	}
}

func benchFreezeBuild(b *testing.B) {
	qt := rangeTree(b, 8, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := linearquad.Freeze(qt)
		if err != nil {
			b.Fatal(err)
		}
		if f.Len() != qt.Len() {
			b.Fatal("freeze lost entries")
		}
	}
	b.ReportMetric(frozenWorkload, "points/op")
}

// benchFreezeIncremental measures an incremental snapshot rebuild after
// a burst of k clustered mutations on the 64k-point workload: the
// mutation churn and dirty-cell marking run with the timer stopped, so
// ns/op is the cost of FreezeDelta alone — the steady-state price a
// shard pays to refresh its snapshot after localized writes.
func benchFreezeIncremental(k int) func(*testing.B) {
	return func(b *testing.B) {
		qt := rangeTree(b, 8, false)
		prev, err := linearquad.Freeze(qt)
		if err != nil {
			b.Fatal(err)
		}
		pts := make([]geom.Point, 0, qt.Len())
		qt.Range(qt.Region(), func(p geom.Point, _ int) bool { pts = append(pts, p); return true })
		// Insert replaces silently on a location collision (possible when
		// clampUnit pins two jittered points to the same boundary
		// coordinate), which would orphan a pts entry and fail a later
		// Delete; track occupancy and resample collisions instead.
		occ := make(map[geom.Point]bool, len(pts))
		for _, p := range pts {
			occ[p] = true
		}
		coder := linearquad.NewCellCoder(qt.Region(), linearquad.MaxDepth)
		d := linearquad.NewDirty(6)
		mark := func(p geom.Point) {
			d.Mark(coder.Code(p) >> uint(2*(linearquad.MaxDepth-d.Level())))
		}
		rng := xrand.New(4242)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			d.Reset()
			// Move k points to jittered locations near one focus: a
			// localized burst, most of the tree stays clean.
			fx, fy := rng.Float64(), rng.Float64()
			for j := 0; j < k; j++ {
				idx := int(rng.Uint64() % uint64(len(pts)))
				old := pts[idx]
				if !qt.Delete(old) {
					b.Fatalf("point %v missing", old)
				}
				mark(old)
				delete(occ, old)
				var p geom.Point
				for {
					p = geom.Pt(
						clampUnit(fx+(rng.Float64()-0.5)*0.02),
						clampUnit(fy+(rng.Float64()-0.5)*0.02),
					)
					if !occ[p] {
						break
					}
				}
				if _, err := qt.Insert(p, idx); err != nil {
					b.Fatal(err)
				}
				occ[p] = true
				mark(p)
				pts[idx] = p
			}
			b.StartTimer()
			f, err := linearquad.FreezeDelta(qt, prev, d)
			if err != nil {
				b.Fatal(err)
			}
			prev = f
		}
		b.ReportMetric(float64(k), "churn/op")
	}
}

func clampUnit(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x >= 1 {
		return 0.999999
	}
	return x
}

func benchFrozenGet(b *testing.B) {
	qt := rangeTree(b, 8, false)
	f, err := linearquad.Freeze(qt)
	if err != nil {
		b.Fatal(err)
	}
	pts := make([]geom.Point, 0, qt.Len())
	qt.Range(qt.Region(), func(p geom.Point, _ int) bool { pts = append(pts, p); return true })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := f.Get(pts[i%len(pts)]); !ok {
			b.Fatal("lost point")
		}
	}
}

// benchFrozenGetBatch measures the batched point-lookup kernel: 256
// probes per op (3/4 hits), bulk-encoded, sorted by Morton code, and
// resolved in one galloping sweep. Compare per-probe cost against
// FrozenGet64k to see what code-ordered locality buys.
func benchFrozenGetBatch(b *testing.B) {
	qt := rangeTree(b, 8, false)
	f, err := linearquad.Freeze(qt)
	if err != nil {
		b.Fatal(err)
	}
	rng := xrand.New(888)
	pts := make([]geom.Point, 256)
	for i := range pts {
		if i%4 == 3 {
			pts[i] = geom.Pt(rng.Float64(), rng.Float64())
		} else {
			pts[i] = f.PointAt(int(rng.Uint64() % uint64(f.Len())))
		}
	}
	vals := make([]int, len(pts))
	found := make([]bool, len(pts))
	var sc linearquad.Scratch
	if f.GetBatch(&sc, pts, vals, found) == 0 {
		b.Fatal("no probe hit")
	}
	b.ReportAllocs()
	b.ResetTimer()
	hits := 0
	for i := 0; i < b.N; i++ {
		hits += f.GetBatch(&sc, pts, vals, found)
	}
	b.StopTimer()
	b.ReportMetric(float64(len(pts)), "probes/op")
	b.ReportMetric(float64(hits)/float64(b.N), "hits/op")
}

// benchSpatialSelect measures Table.Select (or Table.CountRange, which
// skips record materialization) on a quiescent table: the snapshot
// variant compacts first so queries are served lock-free from the
// frozen index; the live variant holds a permanently-stale snapshot so
// every query takes the read lock and walks the pointer tree.
func benchSpatialSelect(snapshot, countOnly bool) func(*testing.B) {
	return func(b *testing.B) {
		db := spatialdb.NewDB()
		tab, err := db.CreateTable("b", 8, geom.Rect{})
		if err != nil {
			b.Fatal(err)
		}
		src := dist.NewUniform(geom.UnitSquare, xrand.New(7999))
		recs := make([]spatialdb.Record, 0, frozenWorkload)
		seen := make(map[geom.Point]bool, frozenWorkload)
		for len(recs) < frozenWorkload {
			p := src.Next()
			if seen[p] {
				continue
			}
			seen[p] = true
			recs = append(recs, spatialdb.Record{ID: uint64(len(recs) + 1), Loc: p})
		}
		if err := tab.InsertBatch(recs); err != nil {
			b.Fatal(err)
		}
		if snapshot {
			if err := tab.Compact(); err != nil {
				b.Fatal(err)
			}
		} else {
			// Pin the table to the locked live-tree path: a huge rebuild
			// threshold plus one post-compaction mutation leaves the
			// snapshot permanently one epoch stale.
			tab.SetSnapshotThreshold(1 << 30)
			if err := tab.Compact(); err != nil {
				b.Fatal(err)
			}
			if err := tab.Insert(spatialdb.Record{ID: frozenWorkload + 1, Loc: geom.Pt(0.5, 0.5)}); err != nil {
				b.Fatal(err)
			}
		}
		queries := rangeWindows()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if countOnly {
				n, _, err := tab.CountRange(queries[i%len(queries)], 0)
				if err != nil {
					b.Fatal(err)
				}
				_ = n
			} else {
				out, _, err := tab.Select(spatialdb.Query{Window: &queries[i%len(queries)]})
				if err != nil {
					b.Fatal(err)
				}
				_ = out
			}
		}
	}
}
