// Package bench is the repository's benchmark-regression harness: a
// registry of named benchmark functions (a machine-runnable subset of
// the tier-1 suite in bench_test.go), a machine-readable JSON report
// format, and a comparator that flags regressions against a previous
// report. cmd/bench is the command-line front end; CI runs it
// non-blocking and archives the BENCH_*.json trajectory so performance
// history travels with the repository.
package bench

import (
	"testing"

	"popana/internal/core"
	"popana/internal/dist"
	"popana/internal/experiment"
	"popana/internal/geom"
	"popana/internal/quadtree"
	"popana/internal/spatialdb"
	"popana/internal/xrand"
)

// Spec is one named benchmark in the suite.
type Spec struct {
	Name string
	F    func(*testing.B)
}

// Suite returns the benchmark suite. With short=true it returns only the
// fast micro-benchmarks (suitable for CI smoke runs); otherwise it also
// includes the experiment-scale benchmarks that regenerate the paper's
// headline quantities.
func Suite(short bool) []Spec {
	specs := []Spec{
		{"ModelSolveM8", benchModelSolve},
		{"QuadtreeInsert", benchQuadtreeInsert},
		{"QuadtreeBulkLoad", benchQuadtreeBulkLoad},
		{"QuadtreeGet", benchQuadtreeGet},
		{"QuadtreeRange", benchQuadtreeRange},
		{"QuadtreeChurn", benchQuadtreeChurn},
		{"SpatialInsertBatch", benchSpatialInsertBatch},
	}
	specs = append(specs, frozenSpecs(short)...)
	specs = append(specs, concurrentSpecs()...)
	specs = append(specs, durableSpecs()...)
	specs = append(specs, tableBatchSpecs(short)...)
	if !short {
		specs = append(specs,
			Spec{"Table1ExpectedDistribution", benchTable1},
			Spec{"Table4UniformPhasing", benchTable4},
			Spec{"SweepSequential", benchSweepSequential},
		)
	}
	return specs
}

// benchCfg mirrors the reduced-but-faithful scale of bench_test.go.
func benchCfg() experiment.Config {
	return experiment.Config{Trials: 3, Points: 500, Seed: 11}
}

func benchModelSolve(b *testing.B) {
	model, err := core.NewPointModel(8, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := model.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

func benchQuadtreeInsert(b *testing.B) {
	qt := quadtree.MustNew[struct{}](quadtree.Config{Capacity: 8})
	src := dist.NewUniform(qt.Region(), xrand.New(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := qt.Insert(src.Next(), struct{}{}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchQuadtreeBulkLoad(b *testing.B) {
	const batch = 10000
	src := dist.NewUniform(geom.UnitSquare, xrand.New(2))
	points := make([]geom.Point, batch)
	values := make([]struct{}, batch)
	for i := range points {
		points[i] = src.Next()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := quadtree.BulkLoad[struct{}](quadtree.Config{Capacity: 8}, points, values)
		if err != nil {
			b.Fatal(err)
		}
		if t.Len() == 0 {
			b.Fatal("empty tree")
		}
	}
	b.ReportMetric(batch, "points/op")
}

func benchQuadtreeGet(b *testing.B) {
	qt := quadtree.MustNew[struct{}](quadtree.Config{Capacity: 8})
	src := dist.NewUniform(qt.Region(), xrand.New(3))
	pts := make([]geom.Point, 100000)
	for i := range pts {
		pts[i] = src.Next()
		if _, err := qt.Insert(pts[i], struct{}{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := qt.Get(pts[i%len(pts)]); !ok {
			b.Fatal("lost point")
		}
	}
}

func benchQuadtreeRange(b *testing.B) {
	qt := quadtree.MustNew[struct{}](quadtree.Config{Capacity: 8})
	src := dist.NewUniform(qt.Region(), xrand.New(4))
	for qt.Len() < 100000 {
		if _, err := qt.Insert(src.Next(), struct{}{}); err != nil {
			b.Fatal(err)
		}
	}
	q := geom.R(0.4, 0.4, 0.6, 0.6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		qt.Range(q, func(geom.Point, struct{}) bool { n++; return true })
		if n == 0 {
			b.Fatal("empty range")
		}
	}
}

// benchQuadtreeChurn exercises the split/merge hot path the free list
// exists for: a stable-size tree absorbing insert/delete pairs.
func benchQuadtreeChurn(b *testing.B) {
	qt := quadtree.MustNew[struct{}](quadtree.Config{Capacity: 4})
	src := dist.NewUniform(qt.Region(), xrand.New(5))
	const live = 20000
	ring := make([]geom.Point, live)
	for i := range ring {
		ring[i] = src.Next()
		if _, err := qt.Insert(ring[i], struct{}{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % live
		if !qt.Delete(ring[j]) {
			b.Fatal("lost point")
		}
		ring[j] = src.Next()
		if _, err := qt.Insert(ring[j], struct{}{}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchSpatialInsertBatch(b *testing.B) {
	const batch = 1000
	src := dist.NewUniform(geom.UnitSquare, xrand.New(6))
	recs := make([]spatialdb.Record, batch)
	for i := range recs {
		recs[i] = spatialdb.Record{ID: uint64(i), Loc: src.Next()}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		db := spatialdb.NewDB()
		tab, err := db.CreateTable("t", 8, geom.Rect{})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := tab.InsertBatch(recs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(batch, "records/op")
}

func benchTable1(b *testing.B) {
	var rs []experiment.CapacityResult
	for i := 0; i < b.N; i++ {
		var err error
		rs, err = experiment.RunTables12(benchCfg(), 8)
		if err != nil {
			b.Fatal(err)
		}
	}
	worst := 0.0
	for _, r := range rs {
		for j := range r.Experimental {
			d := r.Theory.E[j] - r.Experimental[j]
			if d < 0 {
				d = -d
			}
			if d > worst {
				worst = d
			}
		}
	}
	b.ReportMetric(worst, "maxComponentErr")
}

func benchTable4(b *testing.B) {
	sizes := experiment.GeometricSizes(64, 1024)
	var res experiment.SweepResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.RunSweep(benchCfg(), 8, sizes, false)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.OscillationAmplitude(64, 1024), "amplitude")
}

// benchSweepSequential is benchTable4 pinned to one worker — the
// engine's parallel speedup is the ns/op ratio between the two (≈1 on a
// single-core machine, approaching the core count as trials scale).
func benchSweepSequential(b *testing.B) {
	cfg := benchCfg()
	cfg.Workers = 1
	sizes := experiment.GeometricSizes(64, 1024)
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunSweep(cfg, 8, sizes, false); err != nil {
			b.Fatal(err)
		}
	}
}
