// concurrent.go holds the concurrent-workload benchmarks for the
// sharded write path: parallel insert throughput at 1/4/8 workers and a
// 90/10 read/write mix, each run against a 16-shard table and the
// single-lock (SingleShard) baseline. The headline number is the
// 8-worker sharded-vs-single speedup, which cmd/bench computes from the
// report and gates on multi-core machines.
package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"popana/internal/dist"
	"popana/internal/geom"
	"popana/internal/spatialdb"
	"popana/internal/xrand"
)

// shardedBits is the shard-key depth the "sharded" benchmarks pin (16
// shards), so reports are comparable across machines regardless of the
// GOMAXPROCS-derived default.
const shardedBits = 2

func concurrentSpecs() []Spec {
	specs := make([]Spec, 0, 8)
	for _, w := range []int{1, 4, 8} {
		w := w
		specs = append(specs,
			Spec{benchName("ParallelInsertSharded", w), func(b *testing.B) { benchParallelInsert(b, shardedBits, w) }},
			Spec{benchName("ParallelInsertSingle", w), func(b *testing.B) { benchParallelInsert(b, spatialdb.SingleShard, w) }},
		)
	}
	specs = append(specs,
		Spec{"MixedRW90Sharded8", func(b *testing.B) { benchMixedRW(b, shardedBits, 8) }},
		Spec{"MixedRW90Single8", func(b *testing.B) { benchMixedRW(b, spatialdb.SingleShard, 8) }},
	)
	return specs
}

func benchName(prefix string, workers int) string {
	return fmt.Sprintf("%s%d", prefix, workers)
}

// benchParallelInsert measures inserting a fixed record set split
// evenly across the given number of worker goroutines. One op = the
// whole set landed; table construction is outside the timer.
func benchParallelInsert(b *testing.B, shardBits, workers int) {
	const total = 8192
	recs := uniformRecords(b, total, 77)
	chunk := total / workers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		db := spatialdb.NewDB()
		tab, err := db.CreateTableWith("t", spatialdb.TableOptions{Capacity: 8, ShardBits: shardBits})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for _, r := range recs[w*chunk : (w+1)*chunk] {
					if err := tab.Insert(r); err != nil {
						b.Error(err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		if tab.Len() != total {
			b.Fatalf("table holds %d records, want %d", tab.Len(), total)
		}
	}
	b.ReportMetric(total, "records/op")
}

// benchMixedRW measures a 90/10 read/write mix: each worker alternates
// nine small window counts with one insert. One op = opsPerWorker ops
// on every worker against a pre-filled table.
func benchMixedRW(b *testing.B, shardBits, workers int) {
	const (
		prefill      = 20000
		opsPerWorker = 1000
	)
	db := spatialdb.NewDB()
	tab, err := db.CreateTableWith("t", spatialdb.TableOptions{Capacity: 8, ShardBits: shardBits})
	if err != nil {
		b.Fatal(err)
	}
	if err := tab.InsertBatch(uniformRecords(b, prefill, 5)); err != nil {
		b.Fatal(err)
	}
	if err := tab.Compact(); err != nil {
		b.Fatal(err)
	}
	var nextID atomic.Uint64
	nextID.Store(prefill)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := xrand.New(uint64(i)*64 + uint64(w) + 1)
				for op := 0; op < opsPerWorker; op++ {
					if op%10 == 9 {
						rec := spatialdb.Record{ID: nextID.Add(1), Loc: geom.Pt(rng.Float64(), rng.Float64())}
						// A location collision fails the insert; for a
						// throughput benchmark that op still counts.
						_ = tab.Insert(rec)
						continue
					}
					x, y := rng.Float64()*0.95, rng.Float64()*0.95
					win := geom.R(x, y, x+0.05, y+0.05)
					if _, _, err := tab.CountRange(win, 0); err != nil {
						b.Error(err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
	}
	b.ReportMetric(float64(workers*opsPerWorker), "ops/op")
}

// uniformRecords returns n records at distinct uniform locations.
func uniformRecords(b *testing.B, n int, seed uint64) []spatialdb.Record {
	b.Helper()
	src := dist.NewUniform(geom.UnitSquare, xrand.New(seed))
	seen := make(map[geom.Point]bool, n)
	recs := make([]spatialdb.Record, 0, n)
	for len(recs) < n {
		p := src.Next()
		if seen[p] {
			continue
		}
		seen[p] = true
		recs = append(recs, spatialdb.Record{ID: uint64(len(recs)), Loc: p})
	}
	return recs
}
