package bench

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"
)

// Report is one benchmark run in the machine-readable BENCH_*.json
// format: enough environment to judge comparability, plus one Result
// per benchmark.
type Report struct {
	// Label names the run (e.g. "PR2"); informational.
	Label string `json:"label,omitempty"`
	// When is the run's wall-clock timestamp (RFC 3339), if recorded.
	When       string `json:"when,omitempty"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// NumCPU is the machine's logical CPU count (runtime.NumCPU), which
	// bounds how much parallelism GOMAXPROCS could actually buy —
	// relevant when judging the concurrent benchmarks across machines.
	NumCPU int `json:"num_cpu,omitempty"`
	// ParallelInsertSpeedup8W is the sharded-vs-single-lock speedup of
	// the 8-worker parallel-insert benchmark (single ns/op divided by
	// sharded ns/op), recorded when both benchmarks ran. cmd/bench
	// gates on it on multi-core machines.
	ParallelInsertSpeedup8W float64 `json:"parallel_insert_speedup_8w,omitempty"`
	// TableGetBatchSpeedup is the within-report geometric-mean speedup
	// of the table-level batched read path over the scalar Get loop
	// across the in-memory TableGetScalar*/TableGetBatch* pairs,
	// recorded when at least one pair ran. cmd/bench gates on it when
	// -getbatch-speedup is set.
	TableGetBatchSpeedup float64 `json:"table_getbatch_speedup,omitempty"`
	// GatesSkipped lists the acceptance gates cmd/bench could not apply
	// to this run and why, as "gate: reason" strings. A green run that
	// proved less than usual (too few CPUs for the speedup gate, no
	// baseline, cross-machine timing) says so in the report itself, not
	// only on the console.
	GatesSkipped []string `json:"gates_skipped,omitempty"`
	Results      []Result `json:"results"`
}

// InsertSpeedup8 computes the 8-worker parallel-insert speedup of the
// sharded table over the single-lock baseline from the report's
// results: single-lock ns/op divided by sharded ns/op. ok is false when
// either benchmark is missing from the report.
func (r Report) InsertSpeedup8() (speedup float64, ok bool) {
	var single, sharded float64
	for _, res := range r.Results {
		switch res.Name {
		case "ParallelInsertSingle8":
			single = res.NsPerOp
		case "ParallelInsertSharded8":
			sharded = res.NsPerOp
		}
	}
	if single <= 0 || sharded <= 0 {
		return 0, false
	}
	return single / sharded, true
}

// GetBatchSpeedup computes the within-report geometric-mean ns/op
// speedup of the table-level batch read path over the scalar Get loop:
// for every TableGetScalar<mix> result whose TableGetBatch<mix>
// partner is also present, the scalar-over-batch ratio contributes one
// factor. Both benchmarks in a pair replay the identical probe stream,
// so the ratio is a pure amortization factor and needs no baseline
// report. The lazy durable pair is excluded — it measures the
// disk-backed regime, which the in-memory gate must not average away.
// n is the number of contributing pairs; n == 0 when no in-memory pair
// is present or a contributing measurement is non-positive.
func (r Report) GetBatchSpeedup() (speedup float64, n int) {
	byName := make(map[string]Result, len(r.Results))
	for _, res := range r.Results {
		byName[res.Name] = res
	}
	logSum := 0.0
	for _, res := range r.Results {
		if !strings.HasPrefix(res.Name, "TableGetScalar") || strings.Contains(res.Name, "Lazy") {
			continue
		}
		batch, ok := byName["TableGetBatch"+strings.TrimPrefix(res.Name, "TableGetScalar")]
		if !ok {
			continue
		}
		if res.NsPerOp <= 0 || batch.NsPerOp <= 0 {
			return 0, 0
		}
		logSum += math.Log(res.NsPerOp / batch.NsPerOp)
		n++
	}
	if n == 0 {
		return 0, 0
	}
	return math.Exp(logSum / float64(n)), n
}

// Result is one benchmark's measurements.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// Metrics carries the custom b.ReportMetric values (the headline
	// quantity of each paper benchmark), keyed by unit.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// SetBenchtime sets the duration each benchmark targets (the
// -test.benchtime flag behind testing.Benchmark). Call once before Run;
// it registers the testing flags on first use.
func SetBenchtime(d time.Duration) error {
	if flag.Lookup("test.benchtime") == nil {
		testing.Init()
	}
	return flag.Set("test.benchtime", d.String())
}

// Run executes the suite and collects a Report. progress, when non-nil,
// is called before each benchmark with its name and after with its
// result line (for live console output).
func Run(label string, specs []Spec, progress func(string)) Report {
	r := Report{
		Label:      label,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	for _, s := range specs {
		if progress != nil {
			progress(fmt.Sprintf("running %-28s", s.Name))
		}
		br := testing.Benchmark(s.F)
		res := Result{
			Name:        s.Name,
			Iterations:  br.N,
			NsPerOp:     float64(br.T.Nanoseconds()) / float64(br.N),
			AllocsPerOp: br.AllocsPerOp(),
			BytesPerOp:  br.AllocedBytesPerOp(),
		}
		if len(br.Extra) > 0 {
			res.Metrics = make(map[string]float64, len(br.Extra))
			for k, v := range br.Extra {
				res.Metrics[k] = v
			}
		}
		r.Results = append(r.Results, res)
		if progress != nil {
			progress(fmt.Sprintf("  %-28s %12.0f ns/op %8d allocs/op\n", s.Name, res.NsPerOp, res.AllocsPerOp))
		}
	}
	return r
}

// WriteFile writes the report as indented JSON.
func (r Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: encode report: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile reads a report written by WriteFile.
func ReadFile(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return Report{}, fmt.Errorf("bench: decode %s: %w", path, err)
	}
	return r, nil
}

// Regression is one benchmark whose cost grew beyond the threshold
// relative to the baseline.
type Regression struct {
	Name   string  // benchmark name
	Metric string  // "ns/op" or "allocs/op"
	Old    float64 // baseline value
	New    float64 // current value
	Ratio  float64 // New / Old
}

func (g Regression) String() string {
	return fmt.Sprintf("%s: %s %.4g -> %.4g (%.2fx)", g.Name, g.Metric, g.Old, g.New, g.Ratio)
}

// ComparableTiming reports whether ns/op comparisons between the two
// reports are meaningful: both must come from the same GOOS/GOARCH.
// Compare applies this internally; cmd/bench checks it up front so the
// timing skip is announced and recorded rather than silent.
func ComparableTiming(baseline, current Report) bool {
	return baseline.GOOS == current.GOOS && baseline.GOARCH == current.GOARCH
}

// CPUComparable reports whether concurrency-sensitive timing
// comparisons between the two reports are meaningful: both must come
// from machines with the same logical CPU count. A report that never
// recorded num_cpu (pre-PR4 files) is accepted — there is nothing to
// contradict.
func CPUComparable(baseline, current Report) bool {
	return baseline.NumCPU == 0 || current.NumCPU == 0 || baseline.NumCPU == current.NumCPU
}

// ConcurrencySensitive reports whether a benchmark's timing depends on
// how many cores the machine has — the parallel-insert family and the
// mixed reader/writer suite. Their ns/op on a 1-CPU runner says nothing
// about an 8-CPU baseline (or vice versa), so Compare skips them when
// the reports' num_cpu disagree.
func ConcurrencySensitive(name string) bool {
	return strings.Contains(name, "Parallel") || strings.Contains(name, "MixedRW")
}

// FrozenRangeSpeedup returns the geometric-mean ns/op speedup of the
// FrozenRange* benchmarks present in both reports — baseline over
// current, so values above 1 mean the current run is faster — and how
// many benchmark pairs contributed. n == 0 when no pair overlaps or a
// contributing measurement is non-positive.
func FrozenRangeSpeedup(baseline, current Report) (speedup float64, n int) {
	old := make(map[string]Result, len(baseline.Results))
	for _, r := range baseline.Results {
		old[r.Name] = r
	}
	logSum := 0.0
	for _, cur := range current.Results {
		if !strings.HasPrefix(cur.Name, "FrozenRange") {
			continue
		}
		base, ok := old[cur.Name]
		if !ok {
			continue
		}
		if base.NsPerOp <= 0 || cur.NsPerOp <= 0 {
			return 0, 0
		}
		logSum += math.Log(base.NsPerOp / cur.NsPerOp)
		n++
	}
	if n == 0 {
		return 0, 0
	}
	return math.Exp(logSum / float64(n)), n
}

// Compare flags benchmarks present in both reports whose ns/op or
// allocs/op grew by more than threshold (0.20 = +20%). Benchmarks only
// in one report are ignored — the suite is allowed to grow. Timing
// comparisons are skipped when the baseline ran on different
// GOOS/GOARCH (allocs/op is machine-independent and still compared),
// and for concurrency-sensitive benchmarks when the reports disagree
// on the machine's CPU count.
func Compare(baseline, current Report, threshold float64) []Regression {
	old := make(map[string]Result, len(baseline.Results))
	for _, r := range baseline.Results {
		old[r.Name] = r
	}
	comparableTiming := ComparableTiming(baseline, current)
	comparableCPU := CPUComparable(baseline, current)
	var regs []Regression
	for _, cur := range current.Results {
		base, ok := old[cur.Name]
		if !ok {
			continue
		}
		timing := comparableTiming && (comparableCPU || !ConcurrencySensitive(cur.Name))
		if timing && base.NsPerOp > 0 && cur.NsPerOp > base.NsPerOp*(1+threshold) {
			regs = append(regs, Regression{
				Name: cur.Name, Metric: "ns/op",
				Old: base.NsPerOp, New: cur.NsPerOp,
				Ratio: cur.NsPerOp / base.NsPerOp,
			})
		}
		if base.AllocsPerOp > 0 && float64(cur.AllocsPerOp) > float64(base.AllocsPerOp)*(1+threshold) {
			regs = append(regs, Regression{
				Name: cur.Name, Metric: "allocs/op",
				Old: float64(base.AllocsPerOp), New: float64(cur.AllocsPerOp),
				Ratio: float64(cur.AllocsPerOp) / float64(base.AllocsPerOp),
			})
		}
	}
	sort.Slice(regs, func(i, j int) bool {
		if regs[i].Name != regs[j].Name {
			return regs[i].Name < regs[j].Name
		}
		return regs[i].Metric < regs[j].Metric
	})
	return regs
}
