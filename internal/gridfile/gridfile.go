// Package gridfile implements the grid file of Nievergelt, Hinterberger
// and Sevcik [Niev84], one of the bucketing methods the paper's
// introduction groups with quadtrees: two linear scales partition the
// plane into a grid of cells; a directory maps each cell to a data
// bucket; several cells may share one bucket (the bucket's region is
// always a rectangular box of cells). Overflowing buckets split along an
// existing scale division when possible; otherwise a new division is
// added to a scale, refining one axis of the whole directory.
//
// The structure answers exact-match and range queries in (typically) two
// disk accesses; here it serves as another population of buckets whose
// occupancy distribution the experiments compare with the model.
package gridfile

import (
	"errors"
	"fmt"
	"sort"

	"popana/internal/geom"
	"popana/internal/stats"
)

// ErrOutOfRegion is returned when a point outside the region is inserted.
var ErrOutOfRegion = errors.New("gridfile: point outside region")

// ErrUnsplittable is returned when a bucket of identical points cannot
// be split further (capacity exceeded by duplicates of one coordinate at
// the resolution limit).
var ErrUnsplittable = errors.New("gridfile: cannot split bucket any further")

// Config configures a grid file.
type Config struct {
	// BucketCapacity is the bucket size b >= 1.
	BucketCapacity int
	// Region is the universe; the zero rectangle selects geom.UnitSquare.
	Region geom.Rect
	// MaxScale bounds the number of divisions per axis; zero selects
	// 1 << 20.
	MaxScale int
}

func (c Config) withDefaults() (Config, error) {
	if c.BucketCapacity < 1 {
		return c, fmt.Errorf("gridfile: bucket capacity %d < 1", c.BucketCapacity)
	}
	if c.Region == (geom.Rect{}) {
		c.Region = geom.UnitSquare
	}
	if c.Region.Empty() {
		return c, fmt.Errorf("gridfile: empty region %v", c.Region)
	}
	if c.MaxScale == 0 {
		c.MaxScale = 1 << 20
	}
	if c.MaxScale < 2 {
		return c, fmt.Errorf("gridfile: max scale %d < 2", c.MaxScale)
	}
	return c, nil
}

type record struct {
	p geom.Point
	v any
}

// bucket holds records for a box of grid cells [cx0,cx1)×[cy0,cy1)
// in cell coordinates.
type bucket struct {
	recs               []record
	cx0, cy0, cx1, cy1 int
}

func (b *bucket) cellCount() int { return (b.cx1 - b.cx0) * (b.cy1 - b.cy0) }

// File is a grid file mapping distinct points to values.
type File struct {
	cfg Config
	// xs and ys are the interior scale divisions, sorted ascending.
	// With k divisions an axis has k+1 intervals.
	xs, ys []float64
	// dir[iy*nx + ix] is the bucket of cell (ix, iy).
	dir  []*bucket
	size int
	// splitX alternates the axis chosen when a new division is needed.
	splitX bool
}

// New returns an empty grid file.
func New(cfg Config) (*File, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	f := &File{cfg: c}
	f.dir = []*bucket{{cx0: 0, cy0: 0, cx1: 1, cy1: 1}}
	return f, nil
}

// MustNew is New that panics on configuration errors.
func MustNew(cfg Config) *File {
	f, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return f
}

// Len returns the number of stored points.
func (f *File) Len() int { return f.size }

// Scales returns copies of the interior divisions of the two linear
// scales.
func (f *File) Scales() (xs, ys []float64) {
	return append([]float64(nil), f.xs...), append([]float64(nil), f.ys...)
}

// nx and ny are the cell counts along each axis.
func (f *File) nx() int { return len(f.xs) + 1 }
func (f *File) ny() int { return len(f.ys) + 1 }

// cellOf locates the cell containing p.
func (f *File) cellOf(p geom.Point) (ix, iy int) {
	ix = sort.SearchFloat64s(f.xs, p.X)
	// SearchFloat64s returns the insertion index; a point equal to a
	// division belongs to the interval at or after it.
	for ix < len(f.xs) && f.xs[ix] <= p.X {
		ix++
	}
	iy = sort.SearchFloat64s(f.ys, p.Y)
	for iy < len(f.ys) && f.ys[iy] <= p.Y {
		iy++
	}
	return ix, iy
}

func (f *File) bucketAt(ix, iy int) *bucket { return f.dir[iy*f.nx()+ix] }

// Get returns the value stored at point p.
func (f *File) Get(p geom.Point) (any, bool) {
	if !f.cfg.Region.Contains(p) {
		return nil, false
	}
	ix, iy := f.cellOf(p)
	b := f.bucketAt(ix, iy)
	for i := range b.recs {
		if b.recs[i].p == p {
			return b.recs[i].v, true
		}
	}
	return nil, false
}

// Put stores v at point p, replacing any existing value at that exact
// point.
func (f *File) Put(p geom.Point, v any) (replaced bool, err error) {
	if !f.cfg.Region.Contains(p) {
		return false, fmt.Errorf("%w: %v not in %v", ErrOutOfRegion, p, f.cfg.Region)
	}
	ix, iy := f.cellOf(p)
	b := f.bucketAt(ix, iy)
	for i := range b.recs {
		if b.recs[i].p == p {
			b.recs[i].v = v
			return true, nil
		}
	}
	b.recs = append(b.recs, record{p, v})
	f.size++
	for len(b.recs) > f.cfg.BucketCapacity {
		if err := f.splitBucket(b); err != nil {
			return false, err
		}
		ix, iy = f.cellOf(p)
		b = f.bucketAt(ix, iy)
	}
	return false, nil
}

// splitBucket splits b: if its cell box spans more than one cell along
// some axis, partition the box along its middle cell boundary (a "bucket
// split" — no directory growth); otherwise add a new scale division
// through the bucket's single cell (a "directory split").
func (f *File) splitBucket(b *bucket) error {
	if b.cx1-b.cx0 > 1 || b.cy1-b.cy0 > 1 {
		f.partitionBox(b)
		return nil
	}
	// Single cell: refine a scale. Alternate axes, but fall back to the
	// other axis when the preferred one cannot separate the records.
	axes := []bool{f.splitX, !f.splitX}
	for _, useX := range axes {
		if f.addDivision(b, useX) {
			f.splitX = !useX
			return nil
		}
	}
	return fmt.Errorf("%w: %d records in one cell", ErrUnsplittable, len(b.recs))
}

// partitionBox splits a multi-cell bucket along the longer axis of its
// cell box (ties prefer x), rewiring the directory cells.
func (f *File) partitionBox(b *bucket) {
	dx, dy := b.cx1-b.cx0, b.cy1-b.cy0
	nb := &bucket{}
	if dx >= dy {
		mid := b.cx0 + dx/2
		*nb = bucket{cx0: mid, cy0: b.cy0, cx1: b.cx1, cy1: b.cy1}
		b.cx1 = mid
	} else {
		mid := b.cy0 + dy/2
		*nb = bucket{cx0: b.cx0, cy0: mid, cx1: b.cx1, cy1: b.cy1}
		b.cy1 = mid
	}
	for iy := nb.cy0; iy < nb.cy1; iy++ {
		for ix := nb.cx0; ix < nb.cx1; ix++ {
			f.dir[iy*f.nx()+ix] = nb
		}
	}
	f.redistribute(b, nb)
}

// redistribute moves records belonging to nb's region out of b.
func (f *File) redistribute(b, nb *bucket) {
	keep := b.recs[:0]
	for _, r := range b.recs {
		ix, iy := f.cellOf(r.p)
		if ix >= nb.cx0 && ix < nb.cx1 && iy >= nb.cy0 && iy < nb.cy1 {
			nb.recs = append(nb.recs, r)
		} else {
			keep = append(keep, r)
		}
	}
	b.recs = keep
}

// addDivision inserts a new scale division through single-cell bucket b
// along the chosen axis, at the midpoint of the cell's interval, growing
// the directory by one column or row. It reports false when the division
// would not separate anything (all records on one side and interval
// already degenerate) or the scale is full.
func (f *File) addDivision(b *bucket, useX bool) bool {
	if useX && f.nx() >= f.cfg.MaxScale || !useX && f.ny() >= f.cfg.MaxScale {
		return false
	}
	lo, hi := f.cellInterval(b, useX)
	mid := lo + (hi-lo)/2
	if mid <= lo || mid >= hi {
		return false // interval degenerate at float resolution
	}
	// Would the division separate the records? If every record is on
	// one side we still add it only if it at least isolates free space
	// -- but repeated useless divisions loop forever, so require an
	// actual separation OR that the records sit in the upper half
	// (then the lower half becomes empty and progress is possible
	// next round). Simplest robust rule: require both sides non-empty
	// or the records' span to straddle future midpoints; we just check
	// separation and let the caller try the other axis.
	left, right := 0, 0
	for _, r := range b.recs {
		c := r.p.X
		if !useX {
			c = r.p.Y
		}
		if c < mid {
			left++
		} else {
			right++
		}
	}
	if left == 0 || right == 0 {
		// A division that fails to separate is still progress for a
		// skewed cluster (the empty half joins a new bucket and the
		// next split bisects a smaller interval), but to guarantee
		// termination we only accept it when the interval can still
		// be halved several more times.
		if hi-lo < 1e-9 {
			return false
		}
	}
	if useX {
		f.insertXDivision(mid)
	} else {
		f.insertYDivision(mid)
	}
	// The old bucket now spans two cells; partition it.
	f.partitionBox(b)
	return true
}

// cellInterval returns the coordinate interval of b's single cell along
// the given axis.
func (f *File) cellInterval(b *bucket, useX bool) (lo, hi float64) {
	if useX {
		lo, hi = f.cfg.Region.MinX, f.cfg.Region.MaxX
		if b.cx0 > 0 {
			lo = f.xs[b.cx0-1]
		}
		if b.cx0 < len(f.xs) {
			hi = f.xs[b.cx0]
		}
		return lo, hi
	}
	lo, hi = f.cfg.Region.MinY, f.cfg.Region.MaxY
	if b.cy0 > 0 {
		lo = f.ys[b.cy0-1]
	}
	if b.cy0 < len(f.ys) {
		hi = f.ys[b.cy0]
	}
	return lo, hi
}

// insertXDivision adds a vertical division at x, duplicating the
// directory column it passes through and shifting bucket cell ranges.
func (f *File) insertXDivision(x float64) {
	pos := sort.SearchFloat64s(f.xs, x)
	oldNx, ny := f.nx(), f.ny()
	f.xs = append(f.xs, 0)
	copy(f.xs[pos+1:], f.xs[pos:])
	f.xs[pos] = x
	nx := oldNx + 1
	nd := make([]*bucket, nx*ny)
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			src := ix
			if ix > pos {
				src = ix - 1
			}
			nd[iy*nx+ix] = f.dir[iy*oldNx+src]
		}
	}
	f.dir = nd
	// Shift bucket boxes right of the new column.
	for _, b := range f.uniqueBuckets() {
		if b.cx0 > pos {
			b.cx0++
		}
		if b.cx1 > pos {
			b.cx1++
		}
	}
}

// insertYDivision adds a horizontal division at y (mirror of
// insertXDivision).
func (f *File) insertYDivision(y float64) {
	pos := sort.SearchFloat64s(f.ys, y)
	nx, oldNy := f.nx(), f.ny()
	f.ys = append(f.ys, 0)
	copy(f.ys[pos+1:], f.ys[pos:])
	f.ys[pos] = y
	ny := oldNy + 1
	nd := make([]*bucket, nx*ny)
	for iy := 0; iy < ny; iy++ {
		src := iy
		if iy > pos {
			src = iy - 1
		}
		copy(nd[iy*nx:(iy+1)*nx], f.dir[src*nx:(src+1)*nx])
	}
	f.dir = nd
	for _, b := range f.uniqueBuckets() {
		if b.cy0 > pos {
			b.cy0++
		}
		if b.cy1 > pos {
			b.cy1++
		}
	}
}

func (f *File) uniqueBuckets() []*bucket {
	seen := map[*bucket]bool{}
	var out []*bucket
	for _, b := range f.dir {
		if !seen[b] {
			seen[b] = true
			out = append(out, b)
		}
	}
	return out
}

// Delete removes the point p, returning whether it was present.
// (The grid file's merging policies are orthogonal to the population
// experiments; this implementation removes without merging, as many
// grid-file deployments did.)
func (f *File) Delete(p geom.Point) bool {
	if !f.cfg.Region.Contains(p) {
		return false
	}
	ix, iy := f.cellOf(p)
	b := f.bucketAt(ix, iy)
	for i := range b.recs {
		if b.recs[i].p == p {
			last := len(b.recs) - 1
			b.recs[i] = b.recs[last]
			b.recs = b.recs[:last]
			f.size--
			return true
		}
	}
	return false
}

// Range calls visit for every stored point in the closed query
// rectangle; returning false stops the scan.
func (f *File) Range(query geom.Rect, visit func(p geom.Point, v any) bool) bool {
	for _, b := range f.uniqueBuckets() {
		r := f.bucketRegion(b)
		// Closed intersection test: a query edge touching a bucket
		// boundary must still scan that bucket.
		if r.MinX > query.MaxX || query.MinX > r.MaxX || r.MinY > query.MaxY || query.MinY > r.MaxY {
			continue
		}
		for i := range b.recs {
			if query.ContainsClosed(b.recs[i].p) {
				if !visit(b.recs[i].p, b.recs[i].v) {
					return false
				}
			}
		}
	}
	return true
}

// bucketRegion returns the geometric region covered by b's cell box.
func (f *File) bucketRegion(b *bucket) geom.Rect {
	xcut := func(i int) float64 {
		if i == 0 {
			return f.cfg.Region.MinX
		}
		if i-1 < len(f.xs) {
			return f.xs[i-1]
		}
		return f.cfg.Region.MaxX
	}
	ycut := func(i int) float64 {
		if i == 0 {
			return f.cfg.Region.MinY
		}
		if i-1 < len(f.ys) {
			return f.ys[i-1]
		}
		return f.cfg.Region.MaxY
	}
	return geom.Rect{MinX: xcut(b.cx0), MinY: ycut(b.cy0), MaxX: xcut(b.cx1), MaxY: ycut(b.cy1)}
}

// Buckets returns the number of distinct buckets.
func (f *File) Buckets() int { return len(f.uniqueBuckets()) }

// Utilization returns stored records divided by total bucket capacity.
func (f *File) Utilization() float64 {
	nb := f.Buckets()
	if nb == 0 {
		return 0
	}
	return float64(f.size) / float64(nb*f.cfg.BucketCapacity)
}

// Census returns the bucket-occupancy census. Depth is not meaningful
// for a grid file (all buckets sit under a flat directory), so all
// buckets report depth 0; relative area is geometric.
func (f *File) Census() stats.Census {
	var cb stats.CensusBuilder
	total := f.cfg.Region.Area()
	for _, b := range f.uniqueBuckets() {
		cb.AddLeaf(0, len(b.recs), f.bucketRegion(b).Area()/total)
	}
	return cb.Census()
}

// CheckInvariants verifies structural invariants: directory shape,
// bucket boxes partition the grid, every record filed in its cell's
// bucket, size consistent.
func (f *File) CheckInvariants() error {
	nx, ny := f.nx(), f.ny()
	if len(f.dir) != nx*ny {
		return fmt.Errorf("gridfile: directory has %d cells, want %d", len(f.dir), nx*ny)
	}
	if !sort.Float64sAreSorted(f.xs) || !sort.Float64sAreSorted(f.ys) {
		return fmt.Errorf("gridfile: scales not sorted")
	}
	total := 0
	for _, b := range f.uniqueBuckets() {
		if b.cx0 < 0 || b.cy0 < 0 || b.cx1 > nx || b.cy1 > ny || b.cx0 >= b.cx1 || b.cy0 >= b.cy1 {
			return fmt.Errorf("gridfile: bucket box (%d,%d)-(%d,%d) invalid for %dx%d grid", b.cx0, b.cy0, b.cx1, b.cy1, nx, ny)
		}
		for iy := b.cy0; iy < b.cy1; iy++ {
			for ix := b.cx0; ix < b.cx1; ix++ {
				if f.dir[iy*nx+ix] != b {
					return fmt.Errorf("gridfile: cell (%d,%d) not wired to its bucket", ix, iy)
				}
			}
		}
		for _, r := range b.recs {
			ix, iy := f.cellOf(r.p)
			if ix < b.cx0 || ix >= b.cx1 || iy < b.cy0 || iy >= b.cy1 {
				return fmt.Errorf("gridfile: record %v misfiled", r.p)
			}
		}
		total += len(b.recs)
	}
	if total != f.size {
		return fmt.Errorf("gridfile: %d records stored but size is %d", total, f.size)
	}
	return nil
}
