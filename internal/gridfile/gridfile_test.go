package gridfile

import (
	"math"
	"testing"

	"popana/internal/geom"
	"popana/internal/xrand"
)

func randomPoints(rng *xrand.Rand, n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64(), rng.Float64())
	}
	return pts
}

func TestPutGet(t *testing.T) {
	f := MustNew(Config{BucketCapacity: 3})
	pts := randomPoints(xrand.New(1), 1000)
	for i, p := range pts {
		replaced, err := f.Put(p, i)
		if err != nil {
			t.Fatal(err)
		}
		if replaced {
			t.Fatal("fresh point reported replaced")
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if f.Len() != 1000 {
		t.Fatalf("Len = %d", f.Len())
	}
	for i, p := range pts {
		v, ok := f.Get(p)
		if !ok || v != i {
			t.Fatalf("Get(%v) = %v, %v; want %d", p, v, ok, i)
		}
	}
	if _, ok := f.Get(geom.Pt(0.123456789, 0.42)); ok {
		t.Fatal("found absent point")
	}
}

func TestPutReplace(t *testing.T) {
	f := MustNew(Config{BucketCapacity: 2})
	p := geom.Pt(0.5, 0.5)
	if _, err := f.Put(p, "a"); err != nil {
		t.Fatal(err)
	}
	replaced, err := f.Put(p, "b")
	if err != nil || !replaced {
		t.Fatalf("replace = %v, %v", replaced, err)
	}
	if f.Len() != 1 {
		t.Fatalf("Len = %d", f.Len())
	}
	if v, _ := f.Get(p); v != "b" {
		t.Fatalf("value = %v", v)
	}
}

func TestPutOutOfRegion(t *testing.T) {
	f := MustNew(Config{BucketCapacity: 2})
	if _, err := f.Put(geom.Pt(1.5, 0.5), nil); err == nil {
		t.Fatal("out-of-region point accepted")
	}
}

func TestScalesGrow(t *testing.T) {
	f := MustNew(Config{BucketCapacity: 1})
	pts := randomPoints(xrand.New(2), 200)
	for i, p := range pts {
		if _, err := f.Put(p, i); err != nil {
			t.Fatal(err)
		}
	}
	xs, ys := f.Scales()
	if len(xs) == 0 || len(ys) == 0 {
		t.Fatalf("scales did not grow: %d x-cuts, %d y-cuts", len(xs), len(ys))
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Returned scales are copies.
	xs[0] = -99
	xs2, _ := f.Scales()
	if xs2[0] == -99 {
		t.Fatal("Scales returned internal storage")
	}
}

func TestDelete(t *testing.T) {
	f := MustNew(Config{BucketCapacity: 2})
	pts := randomPoints(xrand.New(3), 300)
	for i, p := range pts {
		if _, err := f.Put(p, i); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range pts {
		if !f.Delete(p) {
			t.Fatalf("Delete(%v) failed", p)
		}
	}
	if f.Len() != 0 {
		t.Fatalf("Len = %d", f.Len())
	}
	if f.Delete(geom.Pt(0.5, 0.5)) {
		t.Fatal("deleted absent point")
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRangeMatchesBruteForce(t *testing.T) {
	rng := xrand.New(7)
	f := MustNew(Config{BucketCapacity: 4})
	pts := randomPoints(rng, 600)
	for i, p := range pts {
		if _, err := f.Put(p, i); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 100; trial++ {
		x1, y1 := rng.Float64(), rng.Float64()
		x2, y2 := rng.Float64(), rng.Float64()
		q := geom.R(math.Min(x1, x2), math.Min(y1, y2), math.Max(x1, x2), math.Max(y1, y2))
		want := 0
		for _, p := range pts {
			if q.ContainsClosed(p) {
				want++
			}
		}
		got := 0
		f.Range(q, func(geom.Point, any) bool { got++; return true })
		if got != want {
			t.Fatalf("trial %d: range %d, want %d", trial, got, want)
		}
	}
}

func TestRangeEarlyStop(t *testing.T) {
	f := MustNew(Config{BucketCapacity: 4})
	for i, p := range randomPoints(xrand.New(8), 50) {
		if _, err := f.Put(p, i); err != nil {
			t.Fatal(err)
		}
	}
	n := 0
	if f.Range(geom.UnitSquare, func(geom.Point, any) bool { n++; return false }) {
		t.Fatal("early stop reported complete")
	}
	if n != 1 {
		t.Fatalf("visited %d", n)
	}
}

func TestSkewedDataStillSplits(t *testing.T) {
	// Tightly clustered points exercise the degenerate-interval logic.
	f := MustNew(Config{BucketCapacity: 2})
	rng := xrand.New(9)
	for i := 0; i < 200; i++ {
		p := geom.Pt(0.5+rng.Float64()*1e-3, 0.5+rng.Float64()*1e-3)
		if _, err := f.Put(p, i); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if f.Len() != 200 {
		t.Fatalf("Len = %d", f.Len())
	}
}

func TestDuplicateCoordinateUnsplittable(t *testing.T) {
	// More identical-coordinate points than capacity must eventually
	// error rather than loop forever. Points share X; distinct Y still
	// splittable — so use fully identical points... those replace.
	// Instead: identical X and identical Y except resolution-limit
	// differences.
	f := MustNew(Config{BucketCapacity: 1, MaxScale: 4})
	var err error
	for i := 0; i < 20 && err == nil; i++ {
		_, err = f.Put(geom.Pt(0.1+float64(i)*1e-13, 0.2), i)
	}
	if err == nil {
		t.Fatal("expected ErrUnsplittable or scale overflow")
	}
}

func TestUtilization(t *testing.T) {
	f := MustNew(Config{BucketCapacity: 8})
	rng := xrand.New(10)
	for f.Len() < 4000 {
		if _, err := f.Put(geom.Pt(rng.Float64(), rng.Float64()), nil); err != nil {
			t.Fatal(err)
		}
	}
	u := f.Utilization()
	if u < 0.4 || u > 0.9 {
		t.Fatalf("utilization %v out of plausible range", u)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCensus(t *testing.T) {
	f := MustNew(Config{BucketCapacity: 4})
	rng := xrand.New(11)
	for f.Len() < 500 {
		if _, err := f.Put(geom.Pt(rng.Float64(), rng.Float64()), nil); err != nil {
			t.Fatal(err)
		}
	}
	c := f.Census()
	if c.Items != 500 {
		t.Fatalf("census items %d", c.Items)
	}
	if c.Leaves != f.Buckets() {
		t.Fatalf("census leaves %d, buckets %d", c.Leaves, f.Buckets())
	}
	total := 0.0
	for _, a := range c.AreaByOccupancy {
		total += a
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("bucket areas sum to %v", total)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{BucketCapacity: 0}); err == nil {
		t.Error("capacity 0 accepted")
	}
	if _, err := New(Config{BucketCapacity: 1, MaxScale: 1}); err == nil {
		t.Error("max scale 1 accepted")
	}
	if _, err := New(Config{BucketCapacity: 1, Region: geom.R(2, 2, 1, 1)}); err == nil {
		t.Error("inverted region accepted")
	}
}
