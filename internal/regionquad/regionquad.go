// Package regionquad implements the region quadtree of Klinger [Klin71]
// — the image-representation branch of the quadtree family surveyed in
// Section II: a 2^k × 2^k binary image is recursively quartered until
// every block is uniformly black or white.
//
// It rounds out the hierarchical-structure inventory with the one member
// whose "population" is colors rather than occupancies, and it gives the
// examples a second data primitive (images) to exercise. The classic
// algebra is provided: build/decode, union, intersection, complement,
// and a per-level node census for storage analysis.
package regionquad

import (
	"fmt"
	"math"

	"popana/internal/stats"
)

// Color of a leaf block.
type Color uint8

// Leaf colors. Gray is used only in census reporting for internal nodes.
const (
	White Color = iota
	Black
	Gray
)

// String implements fmt.Stringer.
func (c Color) String() string {
	switch c {
	case White:
		return "white"
	case Black:
		return "black"
	case Gray:
		return "gray"
	default:
		return fmt.Sprintf("Color(%d)", uint8(c))
	}
}

// node is a quadtree node: leaf (children == nil) with a color, or gray
// internal node with four children ordered SW, SE, NW, NE.
type node struct {
	color    Color
	children *[4]*node
}

func (n *node) leaf() bool { return n.children == nil }

// Tree is a region quadtree over a 2^k × 2^k binary image.
type Tree struct {
	size int // image side length, a power of two
	root *node
}

// FromBitmap builds the minimal region quadtree for the bitmap, given in
// row-major order with bitmap[y][x] true = black. The bitmap must be
// square with a power-of-two side length.
func FromBitmap(bitmap [][]bool) (*Tree, error) {
	n := len(bitmap)
	if n == 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("regionquad: side %d is not a positive power of two", n)
	}
	for y, row := range bitmap {
		if len(row) != n {
			return nil, fmt.Errorf("regionquad: row %d has %d pixels, want %d", y, len(row), n)
		}
	}
	return &Tree{size: n, root: build(bitmap, 0, 0, n)}, nil
}

// Uniform returns a quadtree of the given side length (power of two)
// entirely of one color.
func Uniform(size int, c Color) (*Tree, error) {
	if size <= 0 || size&(size-1) != 0 {
		return nil, fmt.Errorf("regionquad: side %d is not a positive power of two", size)
	}
	if c != Black && c != White {
		return nil, fmt.Errorf("regionquad: uniform color must be black or white")
	}
	return &Tree{size: size, root: &node{color: c}}, nil
}

// build constructs the minimal subtree for the square of side s at
// (x0, y0).
func build(bm [][]bool, x0, y0, s int) *node {
	if s == 1 {
		c := White
		if bm[y0][x0] {
			c = Black
		}
		return &node{color: c}
	}
	h := s / 2
	var ch [4]*node
	// Quadrant order: bit 0 = east, bit 1 = north (same as geom).
	ch[0] = build(bm, x0, y0, h)
	ch[1] = build(bm, x0+h, y0, h)
	ch[2] = build(bm, x0, y0+h, h)
	ch[3] = build(bm, x0+h, y0+h, h)
	// Merge four same-colored leaves.
	if ch[0].leaf() && ch[1].leaf() && ch[2].leaf() && ch[3].leaf() &&
		ch[0].color == ch[1].color && ch[1].color == ch[2].color && ch[2].color == ch[3].color {
		return &node{color: ch[0].color}
	}
	return &node{color: Gray, children: &ch}
}

// Size returns the image side length.
func (t *Tree) Size() int { return t.size }

// At reports the color of pixel (x, y).
func (t *Tree) At(x, y int) (Color, error) {
	if x < 0 || y < 0 || x >= t.size || y >= t.size {
		return White, fmt.Errorf("regionquad: pixel (%d,%d) outside %dx%d image", x, y, t.size, t.size)
	}
	n, s := t.root, t.size
	x0, y0 := 0, 0
	for !n.leaf() {
		s /= 2
		q := 0
		if x >= x0+s {
			q |= 1
			x0 += s
		}
		if y >= y0+s {
			q |= 2
			y0 += s
		}
		n = n.children[q]
	}
	return n.color, nil
}

// Bitmap decodes the quadtree back into a row-major bitmap.
func (t *Tree) Bitmap() [][]bool {
	bm := make([][]bool, t.size)
	for y := range bm {
		bm[y] = make([]bool, t.size)
	}
	paint(t.root, 0, 0, t.size, bm)
	return bm
}

func paint(n *node, x0, y0, s int, bm [][]bool) {
	if n.leaf() {
		if n.color == Black {
			for y := y0; y < y0+s; y++ {
				for x := x0; x < x0+s; x++ {
					bm[y][x] = true
				}
			}
		}
		return
	}
	h := s / 2
	paint(n.children[0], x0, y0, h, bm)
	paint(n.children[1], x0+h, y0, h, bm)
	paint(n.children[2], x0, y0+h, h, bm)
	paint(n.children[3], x0+h, y0+h, h, bm)
}

// BlackArea returns the number of black pixels, computed from the tree
// in time proportional to the node count (not the pixel count).
func (t *Tree) BlackArea() int { return blackArea(t.root, t.size) }

func blackArea(n *node, s int) int {
	if n.leaf() {
		if n.color == Black {
			return s * s
		}
		return 0
	}
	h := s / 2
	total := 0
	for _, c := range n.children {
		total += blackArea(c, h)
	}
	return total
}

// Counts reports the number of black, white, and gray nodes.
func (t *Tree) Counts() (black, white, gray int) {
	var walk func(n *node)
	walk = func(n *node) {
		if n.leaf() {
			if n.color == Black {
				black++
			} else {
				white++
			}
			return
		}
		gray++
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	return black, white, gray
}

// Census reports the leaf populations by depth, with the "occupancy"
// convention color: 0 = white, 1 = black, so population analysis
// tooling (stats.Summarize and friends) applies unchanged.
func (t *Tree) Census() stats.Census {
	var b stats.CensusBuilder
	total := float64(t.size) * float64(t.size)
	var walk func(n *node, s, depth int)
	walk = func(n *node, s, depth int) {
		if n.leaf() {
			b.AddLeaf(depth, int(n.color), float64(s)*float64(s)/total)
			return
		}
		b.AddInternal(depth)
		for _, c := range n.children {
			walk(c, s/2, depth+1)
		}
	}
	walk(t.root, t.size, 0)
	return b.Census()
}

// Union returns the pixelwise OR of a and b, which must be the same
// size. The result is minimal (merged).
func Union(a, b *Tree) (*Tree, error) {
	if a.size != b.size {
		return nil, fmt.Errorf("regionquad: size mismatch %d vs %d", a.size, b.size)
	}
	return &Tree{size: a.size, root: combine(a.root, b.root, true)}, nil
}

// Intersect returns the pixelwise AND of a and b.
func Intersect(a, b *Tree) (*Tree, error) {
	if a.size != b.size {
		return nil, fmt.Errorf("regionquad: size mismatch %d vs %d", a.size, b.size)
	}
	return &Tree{size: a.size, root: combine(a.root, b.root, false)}, nil
}

// combine merges two subtrees under OR (union=true) or AND.
func combine(a, b *node, union bool) *node {
	// Absorbing leaf: black for OR, white for AND.
	if a.leaf() {
		if (union && a.color == Black) || (!union && a.color == White) {
			return &node{color: a.color}
		}
		return clone(b) // identity element: result is b
	}
	if b.leaf() {
		if (union && b.color == Black) || (!union && b.color == White) {
			return &node{color: b.color}
		}
		return clone(a)
	}
	var ch [4]*node
	for q := 0; q < 4; q++ {
		ch[q] = combine(a.children[q], b.children[q], union)
	}
	if ch[0].leaf() && ch[1].leaf() && ch[2].leaf() && ch[3].leaf() &&
		ch[0].color == ch[1].color && ch[1].color == ch[2].color && ch[2].color == ch[3].color {
		return &node{color: ch[0].color}
	}
	return &node{color: Gray, children: &ch}
}

// Complement returns the pixelwise NOT of t.
func (t *Tree) Complement() *Tree {
	return &Tree{size: t.size, root: complement(t.root)}
}

func complement(n *node) *node {
	if n.leaf() {
		c := Black
		if n.color == Black {
			c = White
		}
		return &node{color: c}
	}
	var ch [4]*node
	for q := 0; q < 4; q++ {
		ch[q] = complement(n.children[q])
	}
	return &node{color: Gray, children: &ch}
}

func clone(n *node) *node {
	if n.leaf() {
		return &node{color: n.color}
	}
	var ch [4]*node
	for q := 0; q < 4; q++ {
		ch[q] = clone(n.children[q])
	}
	return &node{color: Gray, children: &ch}
}

// ExpectedNodes returns the exact expected number of leaf and gray
// nodes in the region quadtree of a 2^k × 2^k image whose pixels are
// independently black with probability p — the population-analysis
// counterpart for image data, where node "types" are colors rather than
// occupancies.
//
// Derivation: a block of side 2^j is uniform with probability
// u_j = p^(4^j·... ) — precisely u_j = p^s + (1-p)^s with s = 4^j
// pixels. A block appears as a leaf iff it is uniform and its parent
// block is not (the root is a leaf iff it is uniform). Gray nodes are
// the non-uniform blocks. Summing over all blocks of each size gives
// closed forms without any recursion.
func ExpectedNodes(k int, p float64) (leaves, gray float64, err error) {
	if k < 0 || k > 15 {
		return 0, 0, fmt.Errorf("regionquad: depth %d outside 0..15", k)
	}
	if p < 0 || p > 1 {
		return 0, 0, fmt.Errorf("regionquad: probability %g outside [0,1]", p)
	}
	// u[j] = P[a block of side 2^j is uniform].
	u := make([]float64, k+1)
	for j := 0; j <= k; j++ {
		s := math.Pow(4, float64(j)) // pixels in the block
		u[j] = math.Pow(p, s) + math.Pow(1-p, s)
	}
	// Blocks of side 2^j number 4^(k-j). A side-2^j block is a leaf
	// iff it is uniform but its enclosing side-2^(j+1) block is not;
	// P[leaf] = u_j − P[parent uniform] = u_j − u_{j+1} (a uniform
	// parent forces uniform children, so the events nest).
	for j := 0; j < k; j++ {
		count := math.Pow(4, float64(k-j))
		leaves += count * (u[j] - u[j+1])
		gray += math.Pow(4, float64(k-j-1)) * (1 - u[j+1])
	}
	// The root: a leaf if uniform (it has no parent).
	leaves += u[k]
	return leaves, gray, nil
}

// CheckMinimal verifies the defining invariant of a well-formed region
// quadtree: no internal node has four leaf children of equal color, and
// no internal node is marked with a leaf color.
func (t *Tree) CheckMinimal() error {
	return checkMinimal(t.root)
}

func checkMinimal(n *node) error {
	if n.leaf() {
		if n.color == Gray {
			return fmt.Errorf("regionquad: gray leaf")
		}
		return nil
	}
	if n.color != Gray {
		return fmt.Errorf("regionquad: internal node colored %v", n.color)
	}
	allLeaf := true
	for _, c := range n.children {
		if err := checkMinimal(c); err != nil {
			return err
		}
		if !c.leaf() {
			allLeaf = false
		}
	}
	if allLeaf {
		c0 := n.children[0].color
		if n.children[1].color == c0 && n.children[2].color == c0 && n.children[3].color == c0 {
			return fmt.Errorf("regionquad: four %v siblings not merged", c0)
		}
	}
	return nil
}
