package regionquad

import (
	"testing"
	"testing/quick"

	"popana/internal/xrand"
)

func randomBitmap(rng *xrand.Rand, size int, pBlack float64) [][]bool {
	bm := make([][]bool, size)
	for y := range bm {
		bm[y] = make([]bool, size)
		for x := range bm[y] {
			bm[y][x] = rng.Float64() < pBlack
		}
	}
	return bm
}

func bitmapsEqual(a, b [][]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for y := range a {
		for x := range a[y] {
			if a[y][x] != b[y][x] {
				return false
			}
		}
	}
	return true
}

func TestRoundTrip(t *testing.T) {
	rng := xrand.New(1)
	for _, size := range []int{1, 2, 4, 8, 32} {
		for _, p := range []float64{0, 0.1, 0.5, 0.9, 1} {
			bm := randomBitmap(rng, size, p)
			tr, err := FromBitmap(bm)
			if err != nil {
				t.Fatal(err)
			}
			if !bitmapsEqual(tr.Bitmap(), bm) {
				t.Fatalf("size %d p %v: decode != encode", size, p)
			}
			if err := tr.CheckMinimal(); err != nil {
				t.Fatalf("size %d p %v: %v", size, p, err)
			}
		}
	}
}

func TestFromBitmapValidation(t *testing.T) {
	if _, err := FromBitmap(nil); err == nil {
		t.Error("empty bitmap accepted")
	}
	if _, err := FromBitmap([][]bool{{false}, {false}, {false}}); err == nil {
		t.Error("side 3 accepted")
	}
	if _, err := FromBitmap([][]bool{{false, true}, {false}}); err == nil {
		t.Error("ragged bitmap accepted")
	}
}

func TestUniform(t *testing.T) {
	tr, err := Uniform(16, Black)
	if err != nil {
		t.Fatal(err)
	}
	black, white, gray := tr.Counts()
	if black != 1 || white != 0 || gray != 0 {
		t.Fatalf("counts %d %d %d", black, white, gray)
	}
	if tr.BlackArea() != 256 {
		t.Fatalf("area %d", tr.BlackArea())
	}
	if _, err := Uniform(10, Black); err == nil {
		t.Error("side 10 accepted")
	}
	if _, err := Uniform(8, Gray); err == nil {
		t.Error("gray uniform accepted")
	}
}

func TestAt(t *testing.T) {
	bm := randomBitmap(xrand.New(2), 16, 0.4)
	tr, err := FromBitmap(bm)
	if err != nil {
		t.Fatal(err)
	}
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			c, err := tr.At(x, y)
			if err != nil {
				t.Fatal(err)
			}
			want := White
			if bm[y][x] {
				want = Black
			}
			if c != want {
				t.Fatalf("At(%d,%d) = %v, want %v", x, y, c, want)
			}
		}
	}
	if _, err := tr.At(-1, 0); err == nil {
		t.Error("negative pixel accepted")
	}
	if _, err := tr.At(16, 0); err == nil {
		t.Error("out-of-range pixel accepted")
	}
}

func TestBlackAreaMatchesBitmap(t *testing.T) {
	rng := xrand.New(3)
	f := func(seed uint32) bool {
		bm := randomBitmap(xrand.New(uint64(seed)+rng.Uint64()), 16, 0.3)
		tr, err := FromBitmap(bm)
		if err != nil {
			return false
		}
		want := 0
		for _, row := range bm {
			for _, b := range row {
				if b {
					want++
				}
			}
		}
		return tr.BlackArea() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestUnionIntersectAgainstBitmaps(t *testing.T) {
	rng := xrand.New(4)
	for trial := 0; trial < 30; trial++ {
		ab := randomBitmap(rng, 16, 0.3)
		bb := randomBitmap(rng, 16, 0.3)
		a, err := FromBitmap(ab)
		if err != nil {
			t.Fatal(err)
		}
		b, err := FromBitmap(bb)
		if err != nil {
			t.Fatal(err)
		}
		u, err := Union(a, b)
		if err != nil {
			t.Fatal(err)
		}
		x, err := Intersect(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if err := u.CheckMinimal(); err != nil {
			t.Fatalf("union not minimal: %v", err)
		}
		if err := x.CheckMinimal(); err != nil {
			t.Fatalf("intersection not minimal: %v", err)
		}
		ub, xb := u.Bitmap(), x.Bitmap()
		for y := 0; y < 16; y++ {
			for xx := 0; xx < 16; xx++ {
				if ub[y][xx] != (ab[y][xx] || bb[y][xx]) {
					t.Fatalf("union wrong at (%d,%d)", xx, y)
				}
				if xb[y][xx] != (ab[y][xx] && bb[y][xx]) {
					t.Fatalf("intersection wrong at (%d,%d)", xx, y)
				}
			}
		}
	}
}

func TestUnionSizeMismatch(t *testing.T) {
	a, _ := Uniform(8, Black)
	b, _ := Uniform(16, Black)
	if _, err := Union(a, b); err == nil {
		t.Error("size mismatch accepted")
	}
	if _, err := Intersect(a, b); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestComplement(t *testing.T) {
	rng := xrand.New(5)
	bm := randomBitmap(rng, 32, 0.5)
	tr, err := FromBitmap(bm)
	if err != nil {
		t.Fatal(err)
	}
	c := tr.Complement()
	cb := c.Bitmap()
	for y := range bm {
		for x := range bm[y] {
			if cb[y][x] == bm[y][x] {
				t.Fatalf("complement wrong at (%d,%d)", x, y)
			}
		}
	}
	if tr.BlackArea()+c.BlackArea() != 32*32 {
		t.Fatal("areas do not partition the image")
	}
	// De Morgan: ¬(a ∪ b) = ¬a ∩ ¬b.
	b2, _ := FromBitmap(randomBitmap(rng, 32, 0.5))
	u, _ := Union(tr, b2)
	lhs := u.Complement()
	rhs, _ := Intersect(tr.Complement(), b2.Complement())
	if !bitmapsEqual(lhs.Bitmap(), rhs.Bitmap()) {
		t.Fatal("De Morgan violated")
	}
}

func TestCounts(t *testing.T) {
	// Checkerboard at pixel resolution: no merging possible above the
	// pixel level.
	size := 8
	bm := make([][]bool, size)
	for y := range bm {
		bm[y] = make([]bool, size)
		for x := range bm[y] {
			bm[y][x] = (x+y)%2 == 0
		}
	}
	tr, err := FromBitmap(bm)
	if err != nil {
		t.Fatal(err)
	}
	black, white, gray := tr.Counts()
	if black != 32 || white != 32 {
		t.Fatalf("checkerboard counts: %d black, %d white", black, white)
	}
	// Internal nodes: 1 + 4 + 16 = 21 for an 8x8 fully split tree.
	if gray != 21 {
		t.Fatalf("gray count %d, want 21", gray)
	}
}

func TestCensus(t *testing.T) {
	bm := randomBitmap(xrand.New(6), 16, 0.5)
	tr, err := FromBitmap(bm)
	if err != nil {
		t.Fatal(err)
	}
	c := tr.Census()
	black, white, gray := tr.Counts()
	if c.Leaves != black+white || c.Internal != gray {
		t.Fatalf("census %+v vs counts %d/%d/%d", c, black, white, gray)
	}
	// "Occupancy" 1 = black leaves.
	if c.ByOccupancy[1] != black || c.ByOccupancy[0] != white {
		t.Fatalf("census histogram %v", c.ByOccupancy)
	}
	total := 0.0
	for _, a := range c.AreaByOccupancy {
		total += a
	}
	if total < 0.999 || total > 1.001 {
		t.Fatalf("areas sum to %v", total)
	}
}

func TestColorString(t *testing.T) {
	if White.String() != "white" || Black.String() != "black" || Gray.String() != "gray" {
		t.Error("color names wrong")
	}
	if Color(9).String() == "" {
		t.Error("unknown color empty")
	}
}

func TestExpectedNodesIdentity(t *testing.T) {
	// Every split turns 1 node into 4, so leaves = 3·gray + 1 exactly,
	// and the expectation must satisfy the same identity by linearity.
	for _, k := range []int{0, 1, 3, 6} {
		for _, p := range []float64{0, 0.1, 0.5, 0.9, 1} {
			leaves, gray, err := ExpectedNodes(k, p)
			if err != nil {
				t.Fatal(err)
			}
			if d := leaves - (3*gray + 1); d > 1e-9 || d < -1e-9 {
				t.Errorf("k=%d p=%v: leaves %v, gray %v violate 4-ary identity", k, p, leaves, gray)
			}
		}
	}
	// Degenerate images: p=0 or 1 give a single leaf.
	leaves, gray, err := ExpectedNodes(5, 0)
	if err != nil || leaves != 1 || gray != 0 {
		t.Fatalf("all-white: %v %v %v", leaves, gray, err)
	}
}

func TestExpectedNodesMatchesSimulation(t *testing.T) {
	const k, p, trials = 5, 0.3, 40
	want, _, err := ExpectedNodes(k, p)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	rng := xrand.New(99)
	for trial := 0; trial < trials; trial++ {
		bm := randomBitmap(rng, 1<<k, p)
		tr, err := FromBitmap(bm)
		if err != nil {
			t.Fatal(err)
		}
		b, w, _ := tr.Counts()
		total += float64(b + w)
	}
	sim := total / trials
	if rel := (sim - want) / want; rel > 0.03 || rel < -0.03 {
		t.Errorf("simulated E[leaves] %v vs exact %v", sim, want)
	}
}

func TestExpectedNodesValidation(t *testing.T) {
	if _, _, err := ExpectedNodes(-1, 0.5); err == nil {
		t.Error("negative k accepted")
	}
	if _, _, err := ExpectedNodes(2, 1.5); err == nil {
		t.Error("p>1 accepted")
	}
}
