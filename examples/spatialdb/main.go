// Spatial-database example: the population model as an optimizer
// statistic. A table of delivery locations is loaded; EXPLAIN predicts
// window-query costs from the model alone (no sampling, no statistics
// collection pass), and the example compares the predictions with the
// measured traversal work.
package main

import (
	"fmt"
	"log"

	"popana"
)

func main() {
	db := popana.NewSpatialDB()
	table, err := db.CreateTable("deliveries", 8, popana.UnitSquare)
	if err != nil {
		log.Fatal(err)
	}

	// Load 30,000 delivery locations (clustered around depots).
	rng := popana.NewRand(77)
	src := popana.NewClusters(popana.UnitSquare, 30, 0.04, rng)
	for i := 0; table.Len() < 30000; i++ {
		err := table.Insert(popana.SpatialRecord{
			ID:   uint64(i),
			Loc:  src.Next(),
			Data: fmt.Sprintf("parcel-%06d", i),
		})
		if err != nil {
			// Location collisions are possible with clustered data;
			// skip and continue.
			continue
		}
	}
	s := table.Stats()
	fmt.Printf("table %q: %d records in %d blocks (measured %.2f rec/block; model said %.2f)\n\n",
		table.Name(), s.Records, s.Blocks, s.MeasuredOccupancy, s.ModelOccupancy)

	// EXPLAIN vs EXECUTE for windows of growing size.
	fmt.Println("window side   EXPLAIN blocks   measured blocks   EXPLAIN records   measured records   matches")
	fmt.Println("--------------------------------------------------------------------------------------------")
	for _, side := range []float64{0.05, 0.1, 0.2, 0.4, 0.8} {
		w := popana.R(0.1, 0.1, 0.1+side, 0.1+side)
		q := popana.SpatialQuery{Window: &w}
		est, err := table.Explain(q)
		if err != nil {
			log.Fatal(err)
		}
		recs, cost, err := table.Select(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%11.2f   %14.0f   %15d   %15.0f   %16d   %7d\n",
			side, est.Blocks, cost.LeavesVisited, est.Records, cost.RecordsScanned, len(recs))
	}

	// Nearest and radius queries with a post-filter.
	depot := popana.Pt(0.42, 0.58)
	nearest, _, err := table.Select(popana.SpatialQuery{
		Nearest: &popana.NearestSpec{At: depot, K: 3},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nthree parcels nearest the depot at %v:\n", depot)
	for _, r := range nearest {
		fmt.Printf("  %v at %v\n", r.Data, r.Loc)
	}

	within, cost, err := table.Select(popana.SpatialQuery{
		Within: &popana.WithinSpec{At: depot, Radius: 0.15},
		Filter: func(r popana.SpatialRecord) bool { return r.ID%2 == 0 },
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\neven-numbered parcels within 0.15 of the depot: %d (scanned %d records in %d blocks)\n",
		len(within), cost.RecordsScanned, cost.LeavesVisited)
}
