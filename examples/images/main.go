// Region-quadtree example: the image branch of the quadtree family. A
// synthetic "land/water map" is encoded as a region quadtree; the
// example measures the compression the hierarchical representation
// achieves, runs the classic map-overlay algebra (union, intersection,
// complement), and shows the node census machinery working on a colored
// population instead of an occupancy population.
package main

import (
	"fmt"
	"log"
	"math"

	"popana"
)

const size = 256

func main() {
	// A coastline-ish map: land where a smooth field exceeds its mean.
	land := synthMap(size, 3, 0.0, 0.0)
	// A second layer: wetlands (a shifted copy of the field).
	wet := synthMap(size, 5, 0.35, 2.1)

	landQT, err := popana.FromBitmap(land)
	if err != nil {
		log.Fatal(err)
	}
	wetQT, err := popana.FromBitmap(wet)
	if err != nil {
		log.Fatal(err)
	}

	report := func(name string, t *popana.RegionQuadtree) {
		black, white, gray := t.Counts()
		nodes := black + white + gray
		pixels := size * size
		fmt.Printf("%-18s %6d nodes for %d pixels (%.1fx compression), %d black / %d white / %d gray\n",
			name, nodes, pixels, float64(pixels)/float64(nodes), black, white, gray)
	}
	report("land", landQT)
	report("wetlands", wetQT)

	// Map overlay without touching pixels: land OR wetlands, land AND
	// wetlands, dry land (land AND NOT wetlands).
	union, err := popana.RegionUnion(landQT, wetQT)
	if err != nil {
		log.Fatal(err)
	}
	inter, err := popana.RegionIntersect(landQT, wetQT)
	if err != nil {
		log.Fatal(err)
	}
	dry, err := popana.RegionIntersect(landQT, wetQT.Complement())
	if err != nil {
		log.Fatal(err)
	}
	report("land ∪ wetlands", union)
	report("land ∩ wetlands", inter)
	report("dry land", dry)

	fmt.Printf("\nareas: land %.1f%%, wetlands %.1f%%, overlap %.1f%%, dry %.1f%%\n",
		pct(landQT.BlackArea()), pct(wetQT.BlackArea()), pct(inter.BlackArea()), pct(dry.BlackArea()))

	// The census machinery treats colors as a two-type population:
	// big uniform blocks live near the root, detail near the leaves.
	c := landQT.Census()
	fmt.Println("\nland map: leaves by depth (block side = 256 / 2^depth)")
	for d, dc := range c.ByDepth {
		if dc.Leaves > 0 {
			fmt.Printf("  depth %2d: %5d leaves\n", d, dc.Leaves)
		}
	}
}

func pct(area int) float64 { return 100 * float64(area) / float64(size*size) }

// synthMap builds a deterministic smooth binary field: a sum of a few
// sinusoidal plane waves thresholded at level.
func synthMap(n, waves int, level, phase float64) [][]bool {
	bm := make([][]bool, n)
	for y := range bm {
		bm[y] = make([]bool, n)
		for x := range bm[y] {
			fx, fy := float64(x)/float64(n), float64(y)/float64(n)
			v := 0.0
			for k := 1; k <= waves; k++ {
				fk := float64(k)
				v += math.Sin(2*math.Pi*fk*fx+fk*fk+phase) * math.Cos(2*math.Pi*fk*fy-fk+phase/2) / fk
			}
			bm[y][x] = v > level
		}
	}
	return bm
}
