// GIS example: the workload that motivated the paper. A geographic
// information system stores city locations in a PR quadtree whose node
// capacity corresponds to a disk bucket. The population model predicts,
// before any data arrives, how many buckets the database will allocate —
// and the example verifies the prediction against a synthetic
// city-cluster dataset, then runs the spatial queries a GIS needs.
package main

import (
	"fmt"
	"log"
	"sort"

	"popana"
)

// city is the payload stored per point.
type city struct {
	Name string
	Pop  int
}

func main() {
	const bucketCapacity = 8
	const nCities = 20000

	// Capacity planning with the model: how many disk buckets per city?
	model, err := popana.NewPointModel(bucketCapacity, 4)
	if err != nil {
		log.Fatal(err)
	}
	e, err := model.Solve()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model: with bucket capacity %d expect %.2f cities/bucket → ~%.0f buckets for %d cities\n",
		bucketCapacity, e.AverageOccupancy(), float64(nCities)*e.NodesPerItem(), nCities)

	// Build the database. Cities cluster around metropolitan centers —
	// the population model assumes uniformity, so this also probes its
	// robustness on realistic data.
	qt := popana.NewQuadtree(popana.QuadtreeConfig{Capacity: bucketCapacity})
	rng := popana.NewRand(7)
	src := popana.NewClusters(qt.Region(), 40, 0.02, rng)
	for qt.Len() < nCities {
		p := src.Next()
		name := fmt.Sprintf("city-%05d", qt.Len())
		if _, err := qt.Insert(p, city{Name: name, Pop: 1000 + rng.Intn(5_000_000)}); err != nil {
			log.Fatal(err)
		}
	}
	c := qt.Census()
	fmt.Printf("built: %d buckets (%.2f cities/bucket measured), tree height %d\n\n",
		c.Leaves, c.AverageOccupancy(), c.Height)

	// Range query: everything in a map window.
	window := popana.R(0.40, 0.40, 0.60, 0.60)
	var inWindow []city
	qt.Range(window, func(p popana.Point, v any) bool {
		inWindow = append(inWindow, v.(city))
		return true
	})
	fmt.Printf("map window %v contains %d cities\n", window, len(inWindow))

	// Top three by population inside the window.
	sort.Slice(inWindow, func(i, j int) bool { return inWindow[i].Pop > inWindow[j].Pop })
	for i := 0; i < 3 && i < len(inWindow); i++ {
		fmt.Printf("  #%d %s (population %d)\n", i+1, inWindow[i].Name, inWindow[i].Pop)
	}

	// Nearest-city lookup for a user's location.
	user := popana.Pt(0.123, 0.456)
	p, v, ok := qt.Nearest(user)
	if !ok {
		log.Fatal("empty database")
	}
	fmt.Printf("\nnearest city to %v: %s at %v (%.4f away)\n", user, v.(city).Name, p, p.Dist(user))

	// Five nearest (e.g. for a search-results list).
	fmt.Println("five nearest cities:")
	for _, q := range qt.KNearest(user, 5) {
		cv, _ := qt.Get(q)
		fmt.Printf("  %s  %v\n", cv.(city).Name, q)
	}

	// Deletion keeps the structure canonical (blocks merge back).
	removed := 0
	for _, q := range qt.KNearest(user, 100) {
		if qt.Delete(q) {
			removed++
		}
	}
	fmt.Printf("\nremoved %d cities around the user; database now %d cities in %d buckets\n",
		removed, qt.Len(), qt.Census().Leaves)
}
