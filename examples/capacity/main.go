// Capacity planning: use the population model to choose a node capacity
// before building anything. For each candidate bucket size, the model
// gives expected storage utilization and nodes per item in microseconds;
// a simulation pass then confirms the choice. This is the engineering
// decision the paper's "typical case" analysis was built for — worst
// case analysis would be uselessly pessimistic here.
package main

import (
	"fmt"
	"log"

	"popana"
)

func main() {
	const items = 50000
	const bytesPerItem = 64
	const nodeOverheadBytes = 128

	fmt.Println("capacity planning for a 50,000-point spatial index")
	fmt.Println("(model is instantaneous; simulation column verifies it)")
	fmt.Println()
	fmt.Println("capacity  util(model)  nodes/item  est. MB  util(simulated)")
	fmt.Println("-----------------------------------------------------------")

	bestCap, bestBytes := 0, int64(1)<<62
	for _, m := range []int{1, 2, 4, 8, 16, 32} {
		model, err := popana.NewPointModel(m, 4)
		if err != nil {
			log.Fatal(err)
		}
		e, err := model.Solve()
		if err != nil {
			log.Fatal(err)
		}
		nodes := float64(items) * e.NodesPerItem()
		// Each leaf reserves capacity slots; internal nodes ~ leaves/3.
		bytes := int64(nodes*(float64(m*bytesPerItem)+nodeOverheadBytes) +
			nodes/3*nodeOverheadBytes)
		if bytes < bestBytes {
			bestBytes, bestCap = bytes, m
		}

		// Verify with one simulated tree (smaller, same statistics).
		qt := popana.NewQuadtree(popana.QuadtreeConfig{Capacity: m})
		src := popana.NewUniform(qt.Region(), popana.NewRand(uint64(m)))
		for qt.Len() < 8000 {
			if _, err := qt.Insert(src.Next(), nil); err != nil {
				log.Fatal(err)
			}
		}
		c := qt.Census()
		fmt.Printf("%8d  %10.1f%%  %10.3f  %7.1f  %14.1f%%\n",
			m, 100*e.Utilization(m), e.NodesPerItem(),
			float64(bytes)/1e6, 100*c.AverageOccupancy()/float64(m))
	}

	fmt.Printf("\nrecommendation: capacity %d minimizes estimated footprint (%.1f MB)\n",
		bestCap, float64(bestBytes)/1e6)
	fmt.Println("\nnote: utilization hovers near 50% for quadtrees at any capacity —")
	fmt.Println("the model explains why doubling capacity roughly halves node count")
	fmt.Println("without improving utilization, so capacity should be chosen to match")
	fmt.Println("the I/O transfer unit rather than to chase utilization.")
}
