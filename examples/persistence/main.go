// Persistence example: a spatial index that survives restarts. Builds a
// quadtree with BulkLoad (one partitioning pass — the way to load a
// snapshot), saves it to disk, reloads it, and shows the reloaded tree
// is byte-identical — a consequence of the PR quadtree's canonical
// shape, which this library's wire format exploits by storing only the
// points.
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"popana"
)

func main() {
	const n = 50000

	// Generate a snapshot worth of data and bulk-load it.
	rng := popana.NewRand(2024)
	src := popana.NewClusters(popana.UnitSquare, 25, 0.03, rng)
	pts := make([]popana.Point, n)
	vals := make([]any, n)
	for i := range pts {
		pts[i] = src.Next()
		vals[i] = i
	}
	start := time.Now()
	qt, err := popana.BulkLoadQuadtree(popana.QuadtreeConfig{Capacity: 8}, pts, vals)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bulk-loaded %d points in %v (%d blocks, height %d)\n",
		qt.Len(), time.Since(start).Round(time.Millisecond), qt.Census().Leaves, qt.Census().Height)

	// Save.
	path := filepath.Join(os.TempDir(), "popana-demo.qt")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	if err := popana.EncodeQuadtree(qt, f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("saved to %s: %.1f MB in %v\n", path,
		float64(info.Size())/1e6, time.Since(start).Round(time.Millisecond))

	// Reload.
	g, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer g.Close()
	start = time.Now()
	loaded, err := popana.DecodeQuadtree(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reloaded %d points in %v\n", loaded.Len(), time.Since(start).Round(time.Millisecond))

	// The reload is not merely equivalent — it is the same tree.
	var a, b bytes.Buffer
	if err := popana.EncodeQuadtree(qt, &a); err != nil {
		log.Fatal(err)
	}
	if err := popana.EncodeQuadtree(loaded, &b); err != nil {
		log.Fatal(err)
	}
	if bytes.Equal(a.Bytes(), b.Bytes()) {
		fmt.Println("round-trip is byte-identical (canonical shape)")
	} else {
		log.Fatal("round-trip mismatch!")
	}

	// And it still answers queries.
	p, v, _ := loaded.Nearest(popana.Pt(0.5, 0.5))
	fmt.Printf("nearest to center after reload: %v (value %v)\n", p, v)
	if err := os.Remove(path); err != nil {
		log.Fatal(err)
	}
}
