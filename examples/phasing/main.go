// Phasing demo: Section IV's second phenomenon, live. Under a uniform
// distribution all blocks of a generation fill and split roughly in
// step, so average occupancy oscillates with period log₄(n) — forever.
// Under a Gaussian distribution the regions of different density drift
// out of phase and the oscillation damps. This is also why the
// statistical limit lim d̄_n does not exist: the exact recursion
// (internal/statmodel) oscillates identically.
package main

import (
	"fmt"
	"log"

	"popana"
)

func main() {
	const capacity = 8

	model, err := popana.NewPointModel(capacity, 4)
	if err != nil {
		log.Fatal(err)
	}
	e, err := model.Solve()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("population model predicts the cycle-mean occupancy: %.2f\n\n", e.AverageOccupancy())

	// Exact statistical sequence (no Monte Carlo noise at all).
	exact, err := popana.NewStatAnalysis(capacity, 4, 4096)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("     n   simulated(uniform)  simulated(gaussian)  exact(uniform)")
	fmt.Println("---------------------------------------------------------------")
	sizes := []int{64, 90, 128, 181, 256, 362, 512, 724, 1024, 1448, 2048, 2896, 4096}
	for _, n := range sizes {
		uo := meanOccupancy(n, capacity, false)
		gs := meanOccupancy(n, capacity, true)
		fmt.Printf("%6d   %18.2f  %19.2f  %14.3f\n", n, uo, gs, exact.AverageOccupancy(n))
	}

	fmt.Println()
	fmt.Println("watch the uniform column swing with period ×4 in n while the")
	fmt.Println("gaussian column flattens — and the exact column confirms the")
	fmt.Println("swing is a property of the structure, not sampling noise.")
}

// meanOccupancy builds five trees of n points and averages occupancy.
func meanOccupancy(n, capacity int, gaussian bool) float64 {
	total := 0.0
	const trials = 5
	for trial := 0; trial < trials; trial++ {
		qt := popana.NewQuadtree(popana.QuadtreeConfig{Capacity: capacity})
		rng := popana.NewRand(uint64(n)*31 + uint64(trial))
		var src popana.PointSource
		if gaussian {
			src = popana.NewGaussian(qt.Region(), rng)
		} else {
			src = popana.NewUniform(qt.Region(), rng)
		}
		for qt.Len() < n {
			if _, err := qt.Insert(src.Next(), nil); err != nil {
				log.Fatal(err)
			}
		}
		total += qt.Census().AverageOccupancy()
	}
	return total / trials
}
