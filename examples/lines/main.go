// Line-map example: a PMR quadtree over road-like segments, with the
// reconstructed line population model ([Nels86b]) predicting the block
// occupancy distribution. Mirrors the paper's concluding claim that the
// population technique carries over to line data "with results which
// agree with experimental data even better than in the case of the PR
// quadtree".
package main

import (
	"fmt"
	"log"

	"popana"
)

func main() {
	const threshold = 4 // PMR splitting threshold
	const nSegments = 4000

	// Build a PMR quadtree over short segments (a synthetic road map).
	tree, err := popana.NewPMRTree(popana.PMRConfig{Threshold: threshold, MaxDepth: 12})
	if err != nil {
		log.Fatal(err)
	}
	rng := popana.NewRand(3)
	src := popana.NewShortSegments(tree.Region(), 0.05, rng)
	for tree.Len() < nSegments {
		if err := tree.Insert(src.Next()); err != nil {
			log.Fatal(err)
		}
	}
	c := tree.Census()
	fmt.Printf("road map: %d segments in %d blocks (%.2f segments/block, height %d)\n",
		tree.Len(), c.Leaves, c.AverageOccupancy(), c.Height)

	// Measure the local geometry — the one statistic the line model
	// needs: how often a stored segment crosses a given quadrant of
	// its block.
	crossings, incidences := 0.0, 0.0
	tree.WalkLeaves(func(block popana.Rect, segs []popana.Segment) bool {
		for _, s := range segs {
			for q := 0; q < 4; q++ {
				if clipped, ok := s.ClipToRect(block.Quadrant(q)); ok && clipped.Length() > 1e-12 {
					crossings++
				}
			}
			incidences += 4
		}
		return true
	})
	p := crossings / incidences
	fmt.Printf("measured quadrant-crossing probability: %.3f\n\n", p)

	// Solve the line model with that one number.
	model, err := popana.NewLineModel(threshold, 4, popana.LineModelOptions{CrossProb: p})
	if err != nil {
		log.Fatal(err)
	}
	e, err := model.Solve()
	if err != nil {
		log.Fatal(err)
	}
	obs := c.Proportions(model.Types())
	fmt.Println("occupancy  model   observed")
	for i := 0; i < model.Types() && (e.E[i] > 0.001 || obs[i] > 0.001); i++ {
		fmt.Printf("%9d  %.3f   %.3f\n", i, e.E[i], obs[i])
	}
	fmt.Printf("\navg occupancy: model %.2f, observed %.2f\n",
		e.AverageOccupancy(), c.AverageOccupancy())

	// The tree answers the queries a map service needs.
	window := popana.R(0.3, 0.3, 0.5, 0.5)
	fmt.Printf("\nsegments crossing window %v: %d\n", window, len(tree.RangeSegments(window)))
	probe := popana.Pt(0.5, 0.5)
	fmt.Printf("segments in the block containing %v: %d\n", probe, len(tree.Stab(probe)))
}
