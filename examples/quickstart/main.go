// Quickstart: solve the population model for a PR quadtree, build a real
// tree over uniform random points, and compare prediction to
// measurement — the core loop of the paper in ~60 lines.
package main

import (
	"fmt"
	"log"

	"popana"
)

func main() {
	const capacity = 4 // points per node before a block splits

	// 1. Analytical side: the expected distribution ē from nothing but
	// the local split statistics (Section III of the paper).
	model, err := popana.NewPointModel(capacity, 4)
	if err != nil {
		log.Fatal(err)
	}
	e, err := model.Solve()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("population model prediction:")
	fmt.Printf("  distribution over occupancies: %v\n", fmtVec(e.E))
	fmt.Printf("  average occupancy:  %.3f points/node\n", e.AverageOccupancy())
	fmt.Printf("  storage utilization: %.1f%%\n", 100*e.Utilization(capacity))

	// 2. Experimental side: an actual PR quadtree over 10,000 uniform
	// points.
	qt := popana.NewQuadtree(popana.QuadtreeConfig{Capacity: capacity})
	rng := popana.NewRand(42)
	src := popana.NewUniform(qt.Region(), rng)
	for qt.Len() < 10000 {
		if _, err := qt.Insert(src.Next(), nil); err != nil {
			log.Fatal(err)
		}
	}
	c := qt.Census()
	fmt.Println("\nmeasured on a 10,000-point tree:")
	fmt.Printf("  distribution over occupancies: %v\n", fmtVec(c.Proportions(capacity+1)))
	fmt.Printf("  average occupancy:  %.3f points/node\n", c.AverageOccupancy())
	fmt.Printf("  leaf blocks: %d, height: %d\n", c.Leaves, c.Height)

	// 3. The tree is also a live spatial index.
	nearest, _, _ := qt.Nearest(popana.Pt(0.5, 0.5))
	fmt.Printf("\nnearest stored point to the center: %v\n", nearest)
	count := qt.CountRange(popana.R(0.25, 0.25, 0.75, 0.75))
	fmt.Printf("points in the central quarter: %d (expect ≈ 2500)\n", count)
}

func fmtVec(v []float64) string {
	s := "["
	for i, x := range v {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%.3f", x)
	}
	return s + "]"
}
