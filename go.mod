module popana

go 1.22
